// Command neo-serve runs the learned optimizer as a long-lived
// online-learning HTTP daemon: it serves plans from the value-network
// snapshot and plan cache (POST /optimize), ingests observed latencies as
// experience (POST /feedback) and retrains in the background every N
// feedbacks, reports serving counters (GET /stats), and checkpoints the
// learned state periodically and on SIGINT/SIGTERM so a warm restart serves
// bit-identical plans.
//
// Usage:
//
//	neo-serve -addr :8080 -checkpoint neo.ckpt
//	neo-serve -dataset corp -engine engine-m -retrain-every 32
//
// On startup the daemon restores -load (or, if that is unset, an existing
// -checkpoint file); with neither present it bootstraps from the
// PostgreSQL-profile expert over a generated workload.
//
// Two cluster modes turn the daemon into part of the distributed serving
// tier (see OPERATIONS.md):
//
//	neo-serve -trainer http://trainer:7790        # replica: snapshots from
//	                                              # the trainer, feedback
//	                                              # forwarded to it
//	neo-serve -route http://r1:8080,http://r2:8080  # thin router: shard
//	                                              # traffic over replicas
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"neo/internal/cluster"
	"neo/internal/cluster/proto"
	"neo/internal/serve"
	"neo/pkg/neo"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "HTTP listen address")
		dataset      = flag.String("dataset", "imdb", "synthetic dataset: imdb, tpch or corp")
		engineName   = flag.String("engine", "postgres", "execution engine: postgres, sqlite, engine-m, engine-o (simulated) or disk (heap files + buffer pool, measured wall-clock latencies)")
		bufferPoolMB = flag.Int("buffer-pool-mb", 0, "disk engine buffer-pool size in MiB (0 = default 16)")
		dataDir      = flag.String("data-dir", "", "disk engine data directory holding the heap files (empty = fresh temp dir; pre-materialize with neo-datagen -out)")
		encoding     = flag.String("encoding", "r-vector", "featurization: 1-hot, histogram, r-vector, r-vector-nojoins")
		scale        = flag.Float64("scale", 0.4, "synthetic data scale factor")
		seed         = flag.Int64("seed", 42, "random seed")
		queries      = flag.Int("queries", 16, "bootstrap workload size (cold start only)")
		expansions   = flag.Int("expansions", 256, "plan-search expansion budget")
		workers      = flag.Int("workers", 0, "planning worker-pool size (0 = GOMAXPROCS)")
		trainWorkers = flag.Int("train-workers", 0, "gradient worker-pool size (0 = GOMAXPROCS)")
		load         = flag.String("load", "", "checkpoint file to restore on startup (overrides -checkpoint for loading)")
		ckpt         = flag.String("checkpoint", "", "checkpoint file to write periodically and on shutdown (also restored on startup when present and -load is unset)")
		ckptEvery    = flag.Duration("checkpoint-interval", 5*time.Minute, "periodic checkpoint interval (requires -checkpoint)")
		retrainEvery = flag.Int("retrain-every", 16, "trigger a background retraining round every N feedbacks (0 disables)")
		maxExp       = flag.Int("max-experience", 0, "experience-pool cap; oldest entries are dropped beyond it (0 = default 100000, negative = unbounded)")
		fuse         = flag.Bool("fuse-scoring", true, "fuse concurrent requests' value-network scoring into shared forward passes (bit-identical plans; see /stats fusion counters)")
		maxFused     = flag.Int("max-fused-batch", 0, "row cap of one fused forward pass (0 = default 64)")
		fuseLinger   = flag.Duration("fuse-linger", 0, "longest a scoring submission waits to be fused (0 = default 200µs)")
		scorePrec    = flag.String("score-precision", "float32", "numeric format the frozen serving snapshot scores plans with: float64 (exact), float32 (packed tiled-GEMM kernels) or int8 (calibrated quantization; serves float32 until the first retrain provides calibration material). Training and checkpoints always stay float64.")
		routing      = flag.String("routing", "full", "query routing: full (every query takes the learned best-first search), fastpath (statistics-free greedy planner for every query) or auto (per-class routing — greedy microsecond planning for chains/stars, full search for hard shapes, refined online from observed-latency regret; see /stats routing section)")
		trainerURL   = flag.String("trainer", "", "trainer base URL; switches the daemon into replica mode (no local training, feedback forwarded, snapshots pulled)")
		flushEvery   = flag.Duration("flush-every", 0, "replica mode: experience forwarding interval (0 = default 250ms)")
		flushBatch   = flag.Int("flush-batch", 0, "replica mode: entries per forwarded experience container (0 = default 64)")
		maxQueue     = flag.Int("max-queue", 0, "replica mode: forwarding-queue bound; oldest entries are dropped beyond it when the trainer is down (0 = default 4096)")
		route        = flag.String("route", "", "comma-separated replica base URLs; runs the thin consistent-hash router instead of a serving daemon (no database is opened)")
	)
	flag.Parse()

	if *route != "" {
		runRouter(*addr, *route)
		return
	}

	sys, err := neo.Open(neo.Config{
		Dataset:          *dataset,
		Engine:           *engineName,
		DataDir:          *dataDir,
		BufferPoolMB:     *bufferPoolMB,
		Encoding:         neo.Encoding(*encoding),
		Scale:            *scale,
		Seed:             *seed,
		SearchExpansions: *expansions,
		Workers:          *workers,
		TrainWorkers:     *trainWorkers,
		FuseScoring:      *fuse,
		MaxFusedBatch:    *maxFused,
		FuseLinger:       *fuseLinger,
		ScorePrecision:   *scorePrec,
		Routing:          *routing,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("neo-serve: dataset=%s engine=%s encoding=%s rows=%d\n",
		*dataset, *engineName, *encoding, sys.DB.TotalRows())

	restore := *load
	if restore == "" && *ckpt != "" {
		if _, err := os.Stat(*ckpt); err == nil {
			restore = *ckpt
		}
	}
	switch {
	case restore != "":
		if err := sys.LoadCheckpointFile(restore); err != nil {
			fatal(err)
		}
		fmt.Printf("neo-serve: warm start from %s (net version %d, %d experience entries)\n",
			restore, sys.Neo.NetVersion(), sys.Neo.Experience.Len())
	case *trainerURL != "":
		// Replica cold start: the trainer's snapshot replaces bootstrapping —
		// the pull below delivers trained weights into the fresh network.
	default:
		fmt.Printf("neo-serve: cold start, bootstrapping from the expert over %d queries ...\n", *queries)
		wl, err := sys.GenerateWorkload(*queries)
		if err != nil {
			fatal(err)
		}
		if err := sys.Bootstrap(wl.Queries); err != nil {
			fatal(err)
		}
	}

	cfg := serve.Config{
		CheckpointPath:  *ckpt,
		CheckpointEvery: *ckptEvery,
		RetrainEvery:    *retrainEvery,
		MaxExperience:   *maxExp,
	}
	if *trainerURL != "" {
		cfg.Replica = &serve.ReplicaConfig{
			TrainerURL: strings.TrimSuffix(*trainerURL, "/"),
			FlushEvery: *flushEvery,
			FlushBatch: *flushBatch,
			MaxQueue:   *maxQueue,
		}
	}
	srv := serve.New(sys, cfg)
	if *trainerURL != "" {
		// Join the fleet at the trainer's published snapshot. Best effort: a
		// trainer that is down at startup leaves the replica serving from its
		// current (restored or untrained) weights until the first successful
		// /admin/snapshot — degraded, not down.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if v, err := srv.SyncSnapshot(ctx, 0); err != nil {
			fmt.Fprintf(os.Stderr, "neo-serve: warning: snapshot sync from %s failed (%v); serving local weights until the trainer returns\n", *trainerURL, err)
		} else {
			fmt.Printf("neo-serve: replica of %s, serving snapshot version %d\n", *trainerURL, v)
		}
		cancel()
	}
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("neo-serve: listening on %s\n", *addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("neo-serve: %v, shutting down ...\n", sig)
	case err := <-errCh:
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "neo-serve: shutdown:", err)
	}
	if err := srv.Close(); err != nil {
		fatal(err)
	}
	if err := sys.Close(); err != nil {
		fatal(err)
	}
	if *ckpt != "" {
		fmt.Printf("neo-serve: final checkpoint written to %s\n", *ckpt)
	}
}

// runRouter serves the thin consistent-hash router: no database, no
// network weights — just SpecKey sharding and ring-order failover over the
// replica fleet.
func runRouter(addr, list string) {
	var fleet []string
	for _, u := range strings.Split(list, ",") {
		if u = strings.TrimSuffix(strings.TrimSpace(u), "/"); u != "" {
			fleet = append(fleet, u)
		}
	}
	rt, err := cluster.NewRouter(fleet, proto.Client{})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("neo-serve: routing over %d replicas\n", len(fleet))
	httpSrv := &http.Server{Addr: addr, Handler: rt}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("neo-serve: listening on %s\n", addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("neo-serve: %v, shutting down ...\n", sig)
	case err := <-errCh:
		fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "neo-serve: shutdown:", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "neo-serve:", err)
	os.Exit(1)
}
