package repro

import (
	"math/rand"
	"testing"

	"neo/internal/treeconv"
	"neo/internal/valuenet"
)

// scoringFixture builds a value network plus a batch of candidate-plan
// forests shaped like one best-first expansion: batchSize children of one
// node, all sharing the query's encoding.
type scoringFixture struct {
	net     *valuenet.Network
	query   []float64
	queries [][]float64
	forests [][]*treeconv.Tree
}

func newScoringFixture(batchSize int) *scoringFixture {
	const queryDim, planDim = 32, 24
	rng := rand.New(rand.NewSource(99))
	randVec := func(dim int) []float64 {
		v := make([]float64, dim)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	// A left-deep join tree over ~10 relations: 19 nodes.
	var buildTree func(n int) *treeconv.Tree
	buildTree = func(n int) *treeconv.Tree {
		if n <= 1 {
			return treeconv.NewLeaf(randVec(planDim))
		}
		return treeconv.NewNode(randVec(planDim), buildTree(n-1), treeconv.NewLeaf(randVec(planDim)))
	}
	f := &scoringFixture{
		net:   valuenet.New(queryDim, planDim, valuenet.DefaultConfig()),
		query: randVec(queryDim),
	}
	f.net.FitTargetTransform([]float64{10, 100, 1000})
	for i := 0; i < batchSize; i++ {
		f.queries = append(f.queries, f.query)
		f.forests = append(f.forests, []*treeconv.Tree{buildTree(10)})
	}
	return f
}

// BenchmarkBatchedVsSequentialScoring measures the tentpole speedup of the
// batched inference pipeline: scoring the 32 children of one search expansion
// with one PredictBatch call versus 32 per-sample Predict calls.
//
// Verify the speedup with:
//
//	go test -bench BenchmarkBatchedVsSequentialScoring -run '^$' .
func BenchmarkBatchedVsSequentialScoring(b *testing.B) {
	const batchSize = 32
	f := newScoringFixture(batchSize)

	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < batchSize; j++ {
				f.net.Predict(f.queries[j], f.forests[j])
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.net.PredictBatch(f.queries, f.forests)
		}
	})
}
