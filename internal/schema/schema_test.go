package schema

import (
	"strings"
	"testing"
	"testing/quick"
)

func testCatalog(t *testing.T) *Catalog {
	t.Helper()
	tables := []*Table{
		{
			Name:       "title",
			PrimaryKey: "id",
			Columns: []Column{
				{Name: "id", Type: IntType, Distinct: 1000},
				{Name: "production_year", Type: IntType, Distinct: 50},
				{Name: "kind", Type: StringType, Distinct: 5},
			},
		},
		{
			Name:       "movie_keyword",
			PrimaryKey: "id",
			Columns: []Column{
				{Name: "id", Type: IntType, Distinct: 3000},
				{Name: "movie_id", Type: IntType, Distinct: 1000},
				{Name: "keyword_id", Type: IntType, Distinct: 200},
			},
		},
		{
			Name:       "keyword",
			PrimaryKey: "id",
			Columns: []Column{
				{Name: "id", Type: IntType, Distinct: 200},
				{Name: "keyword", Type: StringType, Distinct: 200},
			},
		},
	}
	fks := []ForeignKey{
		{FromTable: "movie_keyword", FromColumn: "movie_id", ToTable: "title", ToColumn: "id"},
		{FromTable: "movie_keyword", FromColumn: "keyword_id", ToTable: "keyword", ToColumn: "id"},
	}
	idx := []Index{{Table: "movie_keyword", Column: "movie_id"}}
	c, err := NewCatalog(tables, fks, idx)
	if err != nil {
		t.Fatalf("NewCatalog: %v", err)
	}
	return c
}

func TestCatalogBasics(t *testing.T) {
	c := testCatalog(t)
	if got := c.NumRelations(); got != 3 {
		t.Errorf("NumRelations = %d, want 3", got)
	}
	if got := c.NumAttributes(); got != 8 {
		t.Errorf("NumAttributes = %d, want 8", got)
	}
	if got := c.TableIndex("title"); got != 0 {
		t.Errorf("TableIndex(title) = %d, want 0", got)
	}
	if got := c.TableIndex("keyword"); got != 2 {
		t.Errorf("TableIndex(keyword) = %d, want 2", got)
	}
	if got := c.TableIndex("nope"); got != -1 {
		t.Errorf("TableIndex(nope) = %d, want -1", got)
	}
	if _, ok := c.Table("movie_keyword"); !ok {
		t.Errorf("Table(movie_keyword) not found")
	}
}

func TestAttributeOrdering(t *testing.T) {
	c := testCatalog(t)
	attrs := c.Attributes()
	if len(attrs) != c.NumAttributes() {
		t.Fatalf("Attributes length %d != NumAttributes %d", len(attrs), c.NumAttributes())
	}
	// Attribute indexes must be dense, unique and consistent with Attributes().
	for i, ref := range attrs {
		if got := c.AttributeIndex(ref.Table, ref.Column); got != i {
			t.Errorf("AttributeIndex(%s) = %d, want %d", ref, got, i)
		}
	}
	if got := c.AttributeIndex("title", "production_year"); got != 1 {
		t.Errorf("AttributeIndex(title.production_year) = %d, want 1", got)
	}
	if got := c.AttributeIndex("no", "such"); got != -1 {
		t.Errorf("AttributeIndex(no.such) = %d, want -1", got)
	}
}

func TestJoinColumns(t *testing.T) {
	c := testCatalog(t)
	fk, ok := c.JoinColumns("title", "movie_keyword")
	if !ok {
		t.Fatalf("JoinColumns(title, movie_keyword) not found")
	}
	if fk.FromTable != "movie_keyword" || fk.ToTable != "title" {
		t.Errorf("unexpected foreign key orientation: %+v", fk)
	}
	// Order of arguments must not matter.
	fk2, ok2 := c.JoinColumns("movie_keyword", "title")
	if !ok2 || fk2 != fk {
		t.Errorf("JoinColumns is not symmetric: %+v vs %+v", fk, fk2)
	}
	if _, ok := c.JoinColumns("title", "keyword"); ok {
		t.Errorf("JoinColumns(title, keyword) should not exist")
	}
}

func TestJoinableNeighbors(t *testing.T) {
	c := testCatalog(t)
	got := c.JoinableNeighbors("movie_keyword")
	want := []string{"keyword", "title"}
	if len(got) != len(want) {
		t.Fatalf("JoinableNeighbors = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("JoinableNeighbors = %v, want %v", got, want)
		}
	}
	if n := c.JoinableNeighbors("keyword"); len(n) != 1 || n[0] != "movie_keyword" {
		t.Errorf("JoinableNeighbors(keyword) = %v", n)
	}
}

func TestHasIndex(t *testing.T) {
	c := testCatalog(t)
	if !c.HasIndex("movie_keyword", "movie_id") {
		t.Errorf("expected secondary index on movie_keyword.movie_id")
	}
	if !c.HasIndex("title", "id") {
		t.Errorf("primary key column should count as indexed")
	}
	if c.HasIndex("title", "kind") {
		t.Errorf("title.kind should not be indexed")
	}
	if c.HasIndex("nope", "id") {
		t.Errorf("unknown table should not be indexed")
	}
}

func TestCatalogValidation(t *testing.T) {
	base := func() []*Table {
		return []*Table{
			{Name: "a", PrimaryKey: "id", Columns: []Column{{Name: "id", Type: IntType}}},
			{Name: "b", Columns: []Column{{Name: "id", Type: IntType}, {Name: "a_id", Type: IntType}}},
		}
	}
	cases := []struct {
		name    string
		tables  []*Table
		fks     []ForeignKey
		indexes []Index
		wantErr string
	}{
		{
			name:    "duplicate table",
			tables:  append(base(), &Table{Name: "a", Columns: []Column{{Name: "x"}}}),
			wantErr: "duplicate table",
		},
		{
			name: "duplicate column",
			tables: []*Table{
				{Name: "a", Columns: []Column{{Name: "id"}, {Name: "id"}}},
			},
			wantErr: "duplicate column",
		},
		{
			name: "bad primary key",
			tables: []*Table{
				{Name: "a", PrimaryKey: "nope", Columns: []Column{{Name: "id"}}},
			},
			wantErr: "primary key",
		},
		{
			name:    "fk unknown table",
			tables:  base(),
			fks:     []ForeignKey{{FromTable: "z", FromColumn: "id", ToTable: "a", ToColumn: "id"}},
			wantErr: "unknown table",
		},
		{
			name:    "fk unknown column",
			tables:  base(),
			fks:     []ForeignKey{{FromTable: "b", FromColumn: "zzz", ToTable: "a", ToColumn: "id"}},
			wantErr: "unknown column",
		},
		{
			name:    "index unknown column",
			tables:  base(),
			indexes: []Index{{Table: "a", Column: "zzz"}},
			wantErr: "unknown column",
		},
		{
			name:    "unnamed table",
			tables:  []*Table{{Name: "", Columns: []Column{{Name: "x"}}}},
			wantErr: "unnamed",
		},
		{
			name:    "unnamed column",
			tables:  []*Table{{Name: "a", Columns: []Column{{Name: ""}}}},
			wantErr: "unnamed column",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewCatalog(tc.tables, tc.fks, tc.indexes)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestMustNewCatalogPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustNewCatalog should panic on invalid input")
		}
	}()
	MustNewCatalog([]*Table{{Name: "", Columns: nil}}, nil, nil)
}

func TestColumnLookup(t *testing.T) {
	c := testCatalog(t)
	tab, _ := c.Table("title")
	col, ok := tab.Column("kind")
	if !ok || col.Type != StringType {
		t.Errorf("Column(kind) = %+v, %v", col, ok)
	}
	if _, ok := tab.Column("missing"); ok {
		t.Errorf("Column(missing) should not exist")
	}
	if got := tab.ColumnIndex("production_year"); got != 1 {
		t.Errorf("ColumnIndex(production_year) = %d, want 1", got)
	}
	if got := tab.ColumnIndex("missing"); got != -1 {
		t.Errorf("ColumnIndex(missing) = %d, want -1", got)
	}
}

func TestColTypeString(t *testing.T) {
	if IntType.String() != "int" || StringType.String() != "string" {
		t.Errorf("unexpected ColType strings: %s %s", IntType, StringType)
	}
	if s := ColType(42).String(); !strings.Contains(s, "42") {
		t.Errorf("unknown ColType string = %q", s)
	}
}

// Property: pairKey is symmetric for arbitrary strings, which is what makes
// JoinColumns order-insensitive.
func TestPairKeySymmetricProperty(t *testing.T) {
	f := func(a, b string) bool {
		return pairKey(a, b) == pairKey(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: dedupeSorted never returns adjacent duplicates and preserves
// membership.
func TestDedupeSortedProperty(t *testing.T) {
	f := func(in []string) bool {
		// The helper requires sorted input.
		sorted := append([]string(nil), in...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		out := dedupeSorted(append([]string(nil), sorted...))
		for i := 1; i < len(out); i++ {
			if out[i] == out[i-1] {
				return false
			}
		}
		seen := make(map[string]bool)
		for _, s := range out {
			seen[s] = true
		}
		for _, s := range sorted {
			if !seen[s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
