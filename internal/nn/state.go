// Layer state serialization. Every layer already exposes its trainable
// parameters in a stable order through Params(); Save/Load stream those
// vectors (name, length, values) through that accessor, verifying on load
// that the receiver's architecture matches what was written. Values are
// copied in place so views that share parameter storage (snapshot clones do
// not, but shadow-gradient parameters do) observe the restored weights.
package nn

import (
	"fmt"
	"io"

	"neo/internal/wire"
)

// SaveParams writes the parameters (name, length, values) in slice order.
func SaveParams(w io.Writer, params []*Param) error {
	if err := wire.WriteU32(w, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := wire.WriteString(w, p.Name); err != nil {
			return err
		}
		if err := wire.WriteF64s(w, p.Value); err != nil {
			return err
		}
	}
	return nil
}

// LoadParams reads parameters written by SaveParams into the given slice,
// in place. The parameter count, every name and every length must match the
// receiver exactly; a mismatch means the serialized network has a different
// architecture and is reported as an error rather than silently mis-assigned.
func LoadParams(r io.Reader, params []*Param) error {
	n, err := wire.ReadU32(r)
	if err != nil {
		return err
	}
	if int(n) != len(params) {
		return fmt.Errorf("nn: state has %d parameters, receiver has %d", n, len(params))
	}
	for _, p := range params {
		name, err := wire.ReadString(r)
		if err != nil {
			return err
		}
		if name != p.Name {
			return fmt.Errorf("nn: state parameter %q does not match receiver parameter %q", name, p.Name)
		}
		if err := wire.ReadF64sInto(r, p.Value, "parameter "+p.Name); err != nil {
			return err
		}
	}
	return nil
}

// Save writes the layer's weights.
func (l *Linear) Save(w io.Writer) error { return SaveParams(w, l.Params()) }

// Load restores weights written by Save, in place.
func (l *Linear) Load(r io.Reader) error { return LoadParams(r, l.Params()) }

// Save writes the layer's gamma/beta vectors.
func (ln *LayerNorm) Save(w io.Writer) error { return SaveParams(w, ln.Params()) }

// Load restores state written by Save, in place.
func (ln *LayerNorm) Load(r io.Reader) error { return LoadParams(r, ln.Params()) }

// Save writes every Linear and LayerNorm parameter of the MLP.
func (m *MLP) Save(w io.Writer) error { return SaveParams(w, m.Params()) }

// Load restores state written by Save, in place. The receiver must have the
// same layer sizes as the saved MLP.
func (m *MLP) Load(r io.Reader) error { return LoadParams(r, m.Params()) }

// Save writes the optimizer state (step counter and first/second moments)
// aligned to the given parameter order — the same order that must be passed
// to Load. Parameters the optimizer has not stepped yet are recorded as
// empty, so a freshly created optimizer round-trips too.
func (a *Adam) Save(w io.Writer, params []*Param) error {
	if err := wire.WriteU64(w, uint64(a.step)); err != nil {
		return err
	}
	if err := wire.WriteU32(w, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		m, hasM := a.m[p]
		v, hasV := a.v[p]
		if !hasM || !hasV {
			m, v = nil, nil
		}
		if err := wire.WriteF64s(w, m); err != nil {
			return err
		}
		if err := wire.WriteF64s(w, v); err != nil {
			return err
		}
	}
	return nil
}

// Load restores optimizer state written by Save. The params slice must list
// the same parameters, in the same order, as the one passed to Save; moment
// lengths are validated against each parameter's size.
func (a *Adam) Load(r io.Reader, params []*Param) error {
	step, err := wire.ReadU64(r)
	if err != nil {
		return err
	}
	n, err := wire.ReadU32(r)
	if err != nil {
		return err
	}
	if int(n) != len(params) {
		return fmt.Errorf("nn: optimizer state covers %d parameters, receiver has %d", n, len(params))
	}
	m := make(map[*Param][]float64, n)
	v := make(map[*Param][]float64, n)
	for _, p := range params {
		mv, err := wire.ReadF64s(r)
		if err != nil {
			return err
		}
		vv, err := wire.ReadF64s(r)
		if err != nil {
			return err
		}
		if len(mv) == 0 && len(vv) == 0 {
			continue // parameter never stepped when saved
		}
		if len(mv) != len(p.Value) || len(vv) != len(p.Value) {
			return fmt.Errorf("nn: optimizer moments for %q have %d/%d values, want %d",
				p.Name, len(mv), len(vv), len(p.Value))
		}
		m[p] = mv
		v[p] = vv
	}
	a.step = int(step)
	a.m = m
	a.v = v
	return nil
}
