package executor

import (
	"fmt"
	"testing"

	"neo/internal/plan"
	"neo/internal/query"
	"neo/internal/schema"
	"neo/internal/storage"
)

// microDB builds a tiny hand-authored two/three-table database with
// controlled join-key distributions, so edge-case cardinalities can be
// asserted exactly: duplicate keys on both sides, keys with no partner, and
// a secondary match column for multi-predicate joins.
func microDB(t testing.TB) *storage.Database {
	t.Helper()
	cat, err := schema.NewCatalog([]*schema.Table{
		{Name: "l", PrimaryKey: "id", Columns: []schema.Column{
			{Name: "id", Type: schema.IntType},
			{Name: "k", Type: schema.IntType},
			{Name: "m", Type: schema.IntType},
			{Name: "tag", Type: schema.StringType},
		}},
		{Name: "r", PrimaryKey: "id", Columns: []schema.Column{
			{Name: "id", Type: schema.IntType},
			{Name: "k", Type: schema.IntType},
			{Name: "m", Type: schema.IntType},
		}},
		{Name: "s", PrimaryKey: "id", Columns: []schema.Column{
			{Name: "id", Type: schema.IntType},
			{Name: "rid", Type: schema.IntType},
		}},
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase(cat)
	iv, sv := storage.IntValue, storage.StringValue
	// l.k: 1,1,2,3 — duplicates on key 1, key 3 has no partner in r.
	// l.m: distinguishes the multi-predicate join.
	lRows := [][]storage.Value{
		{iv(1), iv(1), iv(10), sv("a")},
		{iv(2), iv(1), iv(20), sv("a")},
		{iv(3), iv(2), iv(10), sv("b")},
		{iv(4), iv(3), iv(10), sv("b")},
	}
	// r.k: 1,1,1,2,4 — triplicate key 1, key 4 has no partner in l.
	rRows := [][]storage.Value{
		{iv(1), iv(1), iv(10)},
		{iv(2), iv(1), iv(20)},
		{iv(3), iv(1), iv(30)},
		{iv(4), iv(2), iv(10)},
		{iv(5), iv(4), iv(10)},
	}
	// s.rid references r.id: two children of r1, one of r4.
	sRows := [][]storage.Value{
		{iv(1), iv(1)},
		{iv(2), iv(1)},
		{iv(3), iv(4)},
	}
	for table, rows := range map[string][][]storage.Value{"l": lRows, "r": rRows, "s": sRows} {
		for _, row := range rows {
			if err := db.Table(table).AppendRow(row...); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.BuildIndexes(); err != nil {
		t.Fatal(err)
	}
	return db
}

func joinLR() []query.JoinPredicate {
	return []query.JoinPredicate{{LeftTable: "l", LeftColumn: "k", RightTable: "r", RightColumn: "k"}}
}

// TestJoinEdgeCasesAcrossOperators drives MergeJoin and LoopJoin (and
// HashJoin as the reference) through the under-covered paths: empty inputs
// on either side, duplicate join keys on both sides, and multi-predicate
// joins — asserting the exact output cardinality for every operator, since
// the physical operator may change cost but never the result.
func TestJoinEdgeCasesAcrossOperators(t *testing.T) {
	db := microDB(t)
	e := New(db)

	cases := []struct {
		name  string
		preds []query.Predicate
		joins []query.JoinPredicate
		want  float64
	}{
		{
			// k=1: 2 left x 3 right = 6; k=2: 1x1 = 1; keys 3 and 4 unmatched.
			name:  "duplicate join keys both sides",
			joins: joinLR(),
			want:  7,
		},
		{
			// Empty left input: no l row has tag "zzz".
			name: "empty left input",
			preds: []query.Predicate{
				{Table: "l", Column: "tag", Op: query.Eq, Value: storage.StringValue("zzz")},
			},
			joins: joinLR(),
			want:  0,
		},
		{
			// Empty right input: no r row has id > 100.
			name: "empty right input",
			preds: []query.Predicate{
				{Table: "r", Column: "id", Op: query.Gt, Value: storage.IntValue(100)},
			},
			joins: joinLR(),
			want:  0,
		},
		{
			// Multi-predicate join: l.k=r.k AND l.m=r.m keeps only the
			// key-and-m matches: (l1,r1) k=1,m=10; (l2,r2) k=1,m=20;
			// (l3,r4) k=2,m=10.
			name: "multi-predicate join",
			joins: append(joinLR(),
				query.JoinPredicate{LeftTable: "l", LeftColumn: "m", RightTable: "r", RightColumn: "m"}),
			want: 3,
		},
		{
			// Filter + duplicates: tag="a" keeps l1,l2 (both k=1) -> 2x3.
			name: "filtered left with duplicate keys",
			preds: []query.Predicate{
				{Table: "l", Column: "tag", Op: query.Eq, Value: storage.StringValue("a")},
			},
			joins: joinLR(),
			want:  6,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, op := range plan.AllJoinOps {
				for _, swapped := range []bool{false, true} {
					q := query.New(fmt.Sprintf("%s-%v-%v", tc.name, op, swapped),
						[]string{"l", "r"}, tc.joins, tc.preds)
					left := plan.Leaf("l", plan.TableScan)
					right := plan.Leaf("r", plan.TableScan)
					var root *plan.Node
					if swapped {
						root = plan.Join2(op, right, left)
					} else {
						root = plan.Join2(op, left, right)
					}
					p := &plan.Plan{Query: q, Roots: []*plan.Node{root}}
					res, err := e.Execute(p)
					if err != nil {
						t.Fatalf("%v swapped=%v: %v", op, swapped, err)
					}
					if res.OutputRows != tc.want {
						t.Errorf("%v swapped=%v: OutputRows = %v, want %v",
							op, swapped, res.OutputRows, tc.want)
					}
					ns := res.Nodes[root]
					if ns == nil {
						t.Fatalf("%v swapped=%v: missing join node stats", op, swapped)
					}
					if ns.CrossProduct {
						t.Errorf("%v swapped=%v: predicate join flagged as cross product", op, swapped)
					}
				}
			}
		})
	}
}

// TestCardinalityInvariantAcrossAllJoinOps asserts the executor's core
// contract on a three-table plan: for one logical plan shape, every
// assignment of physical join operators — all 9 combinations over two join
// nodes — produces the identical result cardinality.
func TestCardinalityInvariantAcrossAllJoinOps(t *testing.T) {
	db := microDB(t)
	e := New(db)
	q := query.New("three-way", []string{"l", "r", "s"},
		append(joinLR(),
			query.JoinPredicate{LeftTable: "s", LeftColumn: "rid", RightTable: "r", RightColumn: "id"}),
		nil)

	// Reference cardinality from the canonical plan path.
	want, err := e.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	// (l ⋈ r) pairs: 7. s children: r1 has 2, r2/r3/r4 have 0/0/1.
	// l1,l2 each meet r1 (2 children) and r2, r3 (0); l3 meets r4 (1 child):
	// (l1,r1)x2 + (l2,r1)x2 + (l3,r4)x1 = 5.
	if want != 5 {
		t.Fatalf("canonical three-way cardinality = %v, want 5 (fixture drifted)", want)
	}

	for _, opLower := range plan.AllJoinOps {
		for _, opUpper := range plan.AllJoinOps {
			root := plan.Join2(opUpper,
				plan.Join2(opLower, plan.Leaf("l", plan.TableScan), plan.Leaf("r", plan.TableScan)),
				plan.Leaf("s", plan.TableScan))
			p := &plan.Plan{Query: q, Roots: []*plan.Node{root}}
			res, err := e.Execute(p)
			if err != nil {
				t.Fatalf("%v/%v: %v", opLower, opUpper, err)
			}
			if res.OutputRows != want {
				t.Errorf("%v/%v: OutputRows = %v, want %v", opLower, opUpper, res.OutputRows, want)
			}
		}
	}
}

// TestJoinStatsOnEmptyInputs pins down the node statistics the cost models
// consume when one side of a join is empty — zero output, correct input
// cardinalities, and no crash in any operator.
func TestJoinStatsOnEmptyInputs(t *testing.T) {
	db := microDB(t)
	e := New(db)
	q := query.New("empty", []string{"l", "r"}, joinLR(), []query.Predicate{
		{Table: "l", Column: "id", Op: query.Lt, Value: storage.IntValue(0)},
	})
	for _, op := range plan.AllJoinOps {
		lLeaf := plan.Leaf("l", plan.TableScan)
		root := plan.Join2(op, lLeaf, plan.Leaf("r", plan.TableScan))
		p := &plan.Plan{Query: q, Roots: []*plan.Node{root}}
		res, err := e.Execute(p)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		join := res.Nodes[root]
		if join.LeftRows != 0 || join.RightRows != 5 || join.OutputRows != 0 {
			t.Errorf("%v: join stats = %+v, want 0 left / 5 right / 0 out", op, join)
		}
		scan := res.Nodes[lLeaf]
		if scan.OutputRows != 0 || scan.Selectivity != 0 {
			t.Errorf("%v: scan stats = %+v, want empty", op, scan)
		}
	}
}
