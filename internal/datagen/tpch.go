package datagen

import (
	"fmt"
	"math/rand"

	"neo/internal/schema"
	"neo/internal/storage"
)

// TPCHCatalog returns the catalog of the TPC-H-like profile: a classic
// decision-support star/snowflake schema with uniform, independent data.
func TPCHCatalog() *schema.Catalog {
	tables := []*schema.Table{
		{Name: "region", PrimaryKey: "r_regionkey", Columns: []schema.Column{
			{Name: "r_regionkey", Type: schema.IntType},
			{Name: "r_name", Type: schema.StringType, Distinct: 5},
		}},
		{Name: "nation", PrimaryKey: "n_nationkey", Columns: []schema.Column{
			{Name: "n_nationkey", Type: schema.IntType},
			{Name: "n_name", Type: schema.StringType, Distinct: 25},
			{Name: "n_regionkey", Type: schema.IntType, Distinct: 5},
		}},
		{Name: "supplier", PrimaryKey: "s_suppkey", Columns: []schema.Column{
			{Name: "s_suppkey", Type: schema.IntType},
			{Name: "s_nationkey", Type: schema.IntType, Distinct: 25},
			{Name: "s_acctbal", Type: schema.IntType},
		}},
		{Name: "customer", PrimaryKey: "c_custkey", Columns: []schema.Column{
			{Name: "c_custkey", Type: schema.IntType},
			{Name: "c_nationkey", Type: schema.IntType, Distinct: 25},
			{Name: "c_mktsegment", Type: schema.StringType, Distinct: 5},
			{Name: "c_acctbal", Type: schema.IntType},
		}},
		{Name: "orders", PrimaryKey: "o_orderkey", Columns: []schema.Column{
			{Name: "o_orderkey", Type: schema.IntType},
			{Name: "o_custkey", Type: schema.IntType},
			{Name: "o_orderstatus", Type: schema.StringType, Distinct: 3},
			{Name: "o_orderyear", Type: schema.IntType, Distinct: 7},
			{Name: "o_orderpriority", Type: schema.StringType, Distinct: 5},
		}},
		{Name: "lineitem", PrimaryKey: "l_linenumber", Columns: []schema.Column{
			{Name: "l_linenumber", Type: schema.IntType},
			{Name: "l_orderkey", Type: schema.IntType},
			{Name: "l_partkey", Type: schema.IntType},
			{Name: "l_suppkey", Type: schema.IntType},
			{Name: "l_quantity", Type: schema.IntType, Distinct: 50},
			{Name: "l_returnflag", Type: schema.StringType, Distinct: 3},
			{Name: "l_shipyear", Type: schema.IntType, Distinct: 7},
		}},
		{Name: "part", PrimaryKey: "p_partkey", Columns: []schema.Column{
			{Name: "p_partkey", Type: schema.IntType},
			{Name: "p_brand", Type: schema.StringType, Distinct: 25},
			{Name: "p_type", Type: schema.StringType, Distinct: 30},
			{Name: "p_size", Type: schema.IntType, Distinct: 50},
		}},
		{Name: "partsupp", PrimaryKey: "ps_id", Columns: []schema.Column{
			{Name: "ps_id", Type: schema.IntType},
			{Name: "ps_partkey", Type: schema.IntType},
			{Name: "ps_suppkey", Type: schema.IntType},
			{Name: "ps_availqty", Type: schema.IntType},
		}},
	}
	fks := []schema.ForeignKey{
		{FromTable: "nation", FromColumn: "n_regionkey", ToTable: "region", ToColumn: "r_regionkey"},
		{FromTable: "supplier", FromColumn: "s_nationkey", ToTable: "nation", ToColumn: "n_nationkey"},
		{FromTable: "customer", FromColumn: "c_nationkey", ToTable: "nation", ToColumn: "n_nationkey"},
		{FromTable: "orders", FromColumn: "o_custkey", ToTable: "customer", ToColumn: "c_custkey"},
		{FromTable: "lineitem", FromColumn: "l_orderkey", ToTable: "orders", ToColumn: "o_orderkey"},
		{FromTable: "lineitem", FromColumn: "l_partkey", ToTable: "part", ToColumn: "p_partkey"},
		{FromTable: "lineitem", FromColumn: "l_suppkey", ToTable: "supplier", ToColumn: "s_suppkey"},
		{FromTable: "partsupp", FromColumn: "ps_partkey", ToTable: "part", ToColumn: "p_partkey"},
		{FromTable: "partsupp", FromColumn: "ps_suppkey", ToTable: "supplier", ToColumn: "s_suppkey"},
	}
	indexes := []schema.Index{
		{Table: "orders", Column: "o_custkey"},
		{Table: "lineitem", Column: "l_orderkey"},
		{Table: "lineitem", Column: "l_partkey"},
		{Table: "partsupp", Column: "ps_partkey"},
	}
	return schema.MustNewCatalog(tables, fks, indexes)
}

// GenerateTPCH generates the uniform decision-support database.
func GenerateTPCH(cfg Config) (*storage.Database, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	cat := TPCHCatalog()
	db := storage.NewDatabase(cat)

	regions := []string{"africa", "america", "asia", "europe", "middle east"}
	for i, r := range regions {
		if err := db.Table("region").AppendRow(storage.IntValue(int64(i+1)), storage.StringValue(r)); err != nil {
			return nil, err
		}
	}
	nNations := 25
	for i := 1; i <= nNations; i++ {
		if err := db.Table("nation").AppendRow(
			storage.IntValue(int64(i)),
			storage.StringValue(fmt.Sprintf("nation-%d", i)),
			storage.IntValue(int64(1+(i-1)%5)),
		); err != nil {
			return nil, err
		}
	}

	nSupp := cfg.scaled(60)
	for i := 1; i <= nSupp; i++ {
		if err := db.Table("supplier").AppendRow(
			storage.IntValue(int64(i)),
			storage.IntValue(int64(1+rng.Intn(nNations))),
			storage.IntValue(int64(rng.Intn(10000))),
		); err != nil {
			return nil, err
		}
	}

	segments := []string{"automobile", "building", "furniture", "household", "machinery"}
	nCust := cfg.scaled(400)
	for i := 1; i <= nCust; i++ {
		if err := db.Table("customer").AppendRow(
			storage.IntValue(int64(i)),
			storage.IntValue(int64(1+rng.Intn(nNations))),
			storage.StringValue(segments[rng.Intn(len(segments))]),
			storage.IntValue(int64(rng.Intn(10000))),
		); err != nil {
			return nil, err
		}
	}

	nPart := cfg.scaled(300)
	brands := 25
	types := []string{"standard", "small", "medium", "large", "economy", "promo"}
	for i := 1; i <= nPart; i++ {
		if err := db.Table("part").AppendRow(
			storage.IntValue(int64(i)),
			storage.StringValue(fmt.Sprintf("brand#%d", 1+rng.Intn(brands))),
			storage.StringValue(types[rng.Intn(len(types))]),
			storage.IntValue(int64(1+rng.Intn(50))),
		); err != nil {
			return nil, err
		}
	}

	nPS := cfg.scaled(900)
	for i := 1; i <= nPS; i++ {
		if err := db.Table("partsupp").AppendRow(
			storage.IntValue(int64(i)),
			storage.IntValue(int64(1+rng.Intn(nPart))),
			storage.IntValue(int64(1+rng.Intn(nSupp))),
			storage.IntValue(int64(rng.Intn(1000))),
		); err != nil {
			return nil, err
		}
	}

	statuses := []string{"open", "fulfilled", "pending"}
	priorities := []string{"1-urgent", "2-high", "3-medium", "4-low", "5-none"}
	nOrders := cfg.scaled(1800)
	for i := 1; i <= nOrders; i++ {
		if err := db.Table("orders").AppendRow(
			storage.IntValue(int64(i)),
			storage.IntValue(int64(1+rng.Intn(nCust))),
			storage.StringValue(statuses[rng.Intn(len(statuses))]),
			storage.IntValue(int64(1992+rng.Intn(7))),
			storage.StringValue(priorities[rng.Intn(len(priorities))]),
		); err != nil {
			return nil, err
		}
	}

	flags := []string{"a", "n", "r"}
	nLine := cfg.scaled(5400)
	for i := 1; i <= nLine; i++ {
		if err := db.Table("lineitem").AppendRow(
			storage.IntValue(int64(i)),
			storage.IntValue(int64(1+rng.Intn(nOrders))),
			storage.IntValue(int64(1+rng.Intn(nPart))),
			storage.IntValue(int64(1+rng.Intn(nSupp))),
			storage.IntValue(int64(1+rng.Intn(50))),
			storage.StringValue(flags[rng.Intn(len(flags))]),
			storage.IntValue(int64(1992+rng.Intn(7))),
		); err != nil {
			return nil, err
		}
	}

	if err := db.BuildIndexes(); err != nil {
		return nil, err
	}
	return db, nil
}
