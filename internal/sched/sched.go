// Package sched implements the cross-request inference scheduler: a
// micro-batching layer that accepts batched-scoring submissions from many
// concurrent goroutines and coalesces their work against one immutable set
// of value-network weights. PR 1 amortised inference *within* a search by
// scoring all children of an expansion in one PredictBatch call; under
// concurrent serving every search still pays its own private forward passes,
// so serving N clients costs N independent pass streams over the same
// weights. The scheduler is the serving-scale analogue of the paper's GPU
// batching (Section 4.2 / 6.3), and coalesces on two levels:
//
//   - Fusion (max-batch-size, max-linger policy): submissions that arrive
//     close together in time are fused into one shared forward pass. A
//     submission runs immediately once the fused batch reaches MaxBatch
//     rows, or after the Linger deadline otherwise. The linger is paid only
//     when it can pay off: the scheduler lingers only if another submission
//     was observed in flight within the last companionWindow, so a search
//     running alone never waits and an idle server's fusion tax is zero —
//     while on a busy server the linger's sleep is exactly what lets the
//     other searches reach their own submission points and pile on.
//
//   - Memoisation: scores are cached per row, keyed by a 128-bit hash of
//     the row's exact encoded values, for the lifetime of the scheduler's
//     backend. Concurrent searches for the same hot query — the
//     plan-cache-stampede window right after a retraining round empties the
//     plan cache — submit thousands of identical rows; each distinct row is
//     scored once and every duplicate (within one fused pass or across
//     passes) is served from the cache. Because the backend is immutable
//     and the batch kernels compute every row independently in a fixed
//     order, a cached score is the same float64, bit for bit, that a fresh
//     pass would produce.
//
// Per-caller results are scattered back in submission order, so every search
// remains bit-identical to running against the raw network no matter how its
// submissions were fused, deduplicated, or served from cache.
//
// Lifecycle: a Scheduler is pinned to one immutable backend (a value-network
// snapshot). When a retraining round publishes new weights, the owner
// creates a fresh Scheduler for the new snapshot and Closes the old one —
// Close flushes the pending batch against the old backend and turns every
// later submission into a direct (unfused) backend call, so scores from
// different weight sets can never share one fused pass or one cache, and
// searches pinned to the old snapshot drain without blocking the swap.
package sched

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"neo/internal/treeconv"
)

// Backend is the shared forward pass submissions are fused into.
// *valuenet.Snapshot (and *valuenet.Network) satisfy it; it must be safe for
// concurrent use, immutable for the scheduler's lifetime, and must compute
// each row independently of its batch neighbours (which the repo's batch
// kernels guarantee — see ARCHITECTURE.md).
type Backend interface {
	PredictBatch(queries [][]float64, forests [][]*treeconv.Tree) []float64
}

// DefaultMaxBatch caps the rows of one fused forward pass when Options
// leaves MaxBatch zero. 64 comfortably holds several expansion-sized
// submissions while keeping the pass within the batch sizes the kernels
// were tuned at.
const DefaultMaxBatch = 64

// DefaultLinger bounds how long a submission waits for companions when
// Options leaves Linger zero: long enough for concurrent searches to pile
// on, far below any request latency budget.
const DefaultLinger = 200 * time.Microsecond

// DefaultCacheRows bounds the per-snapshot score cache when Options leaves
// CacheRows zero (entries are ~40 bytes, so the default costs a few MB).
const DefaultCacheRows = 1 << 16

// companionWindow is how long the memory of "another submission was in
// flight" lasts. Within it, a leader lingers for companions; past it, the
// scheduler assumes it is serving a lone search and flushes immediately.
// Generous relative to the linger so that bursty concurrency on a single
// core — where overlap is only observable at preemption points — still
// sustains fusion between bursts.
const companionWindow = 10 * time.Millisecond

// Options tunes a Scheduler.
type Options struct {
	// MaxBatch is the row cap of one fused forward pass; a submission that
	// fills the batch runs immediately. Zero selects DefaultMaxBatch. A
	// single submission larger than MaxBatch still runs in one pass —
	// submissions are never split.
	MaxBatch int
	// Linger is the longest a submission waits to be fused before the
	// pending batch runs anyway. Zero selects DefaultLinger.
	Linger time.Duration
	// CacheRows bounds the score-memoisation cache (zero selects
	// DefaultCacheRows, negative disables caching).
	CacheRows int
	// Counters, when non-nil, aggregates statistics across this scheduler's
	// lifetime — and, because the owner passes the same Counters to every
	// successor scheduler, across snapshot swaps too.
	Counters *Counters
}

// Counters aggregates fusion statistics. All methods are safe for concurrent
// use; one Counters instance is typically shared by the whole chain of
// schedulers a Neo creates across snapshot swaps, so /stats counters are
// monotonic over the process lifetime.
type Counters struct {
	batches     atomic.Uint64 // shared forward passes executed
	fused       atomic.Uint64 // passes that carried >= 2 submissions
	passSubs    atomic.Uint64 // submissions that rode an executed pass
	submissions atomic.Uint64
	rows        atomic.Uint64
	cacheHits   atomic.Uint64 // rows answered without backend work
}

// Stats is a point-in-time view of a Counters, shaped for /stats JSON.
type Stats struct {
	// Enabled reports whether fused scoring is configured at all (set by the
	// owner; a zero Counters reports false).
	Enabled bool `json:"enabled"`
	// Batches counts shared forward passes executed through schedulers.
	Batches uint64 `json:"batches"`
	// FusedBatches counts passes that fused two or more submissions.
	FusedBatches uint64 `json:"fused_batches"`
	// Submissions counts ScoreBatch-level submissions accepted.
	Submissions uint64 `json:"submissions"`
	// Rows counts individual plans submitted for scoring.
	Rows uint64 `json:"rows"`
	// CacheHits counts rows answered by memoisation or in-pass
	// deduplication instead of backend compute.
	CacheHits uint64 `json:"cache_hits"`
	// AvgFusedSize is the mean number of submissions per executed pass
	// (submissions fully served from cache never reach a pass).
	AvgFusedSize float64 `json:"avg_fused_size"`
}

// Stats returns the current counter values.
func (c *Counters) Stats() Stats {
	s := Stats{
		Batches:      c.batches.Load(),
		FusedBatches: c.fused.Load(),
		Submissions:  c.submissions.Load(),
		Rows:         c.rows.Load(),
		CacheHits:    c.cacheHits.Load(),
	}
	if s.Batches > 0 {
		s.AvgFusedSize = float64(c.passSubs.Load()) / float64(s.Batches)
	}
	return s
}

// submission is one caller's ScoreBatch waiting to be fused. The caller
// blocks on done; the flusher writes out before closing done, so the channel
// close publishes the results. Rows already resolved by the submit-time
// cache probe carry their scores in out with resolved set, so the flusher
// never re-probes them.
type submission struct {
	queries  [][]float64
	forests  [][]*treeconv.Tree
	keys     []rowKey
	out      []float64
	resolved []bool
	taken    bool // owned by Scheduler.mu: set once the submission left pending
	done     chan struct{}
}

// Scheduler coalesces concurrent PredictBatch submissions against one fixed
// backend. Safe for concurrent use. It runs no background goroutine: the
// caller that fills the batch — or whose linger deadline fires first —
// executes the fused pass on behalf of everyone in it, so an abandoned
// Scheduler costs nothing and needs no finalisation beyond Close.
type Scheduler struct {
	backend  Backend
	maxBatch int
	linger   time.Duration
	counters *Counters

	// active counts goroutines currently inside PredictBatch (including the
	// one executing the backend pass); lastCompanion is the UnixNano of the
	// last moment two of them overlapped. Together they drive the
	// linger-only-when-it-can-pay-off policy.
	active        atomic.Int64
	lastCompanion atomic.Int64

	mu          sync.Mutex
	closed      bool          // guarded by mu
	pending     []*submission // guarded by mu
	pendingRows int           // guarded by mu

	// cache memoises row scores for the backend's lifetime. cacheCap <= 0
	// disables it.
	cacheMu  sync.Mutex
	cache    map[rowKey]float64 // guarded by cacheMu
	cacheCap int
}

// New creates a scheduler over a fixed backend.
func New(backend Backend, opts Options) *Scheduler {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = DefaultMaxBatch
	}
	if opts.Linger <= 0 {
		opts.Linger = DefaultLinger
	}
	if opts.CacheRows == 0 {
		opts.CacheRows = DefaultCacheRows
	}
	if opts.Counters == nil {
		opts.Counters = &Counters{}
	}
	s := &Scheduler{
		backend:  backend,
		maxBatch: opts.MaxBatch,
		linger:   opts.Linger,
		counters: opts.Counters,
		cacheCap: opts.CacheRows,
	}
	if s.cacheCap > 0 {
		s.cache = make(map[rowKey]float64)
	}
	return s
}

// Counters returns the scheduler's (possibly shared) statistics counters.
func (s *Scheduler) Counters() *Counters { return s.counters }

// rowKey is a 128-bit hash of one row's exact encoded values (query vector
// plus forest structure and node vectors). 128 bits make an accidental
// collision — which would silently hand one row another row's score —
// vanishingly unlikely: at 2^40 distinct rows the birthday bound puts the
// collision probability near 2^-49.
type rowKey struct{ hi, lo uint64 }

// hashRow folds every float64 bit pattern of the row into two independent
// multiply-xor lanes (FNV-style chaining with distinct large odd primes, so
// each word's contribution depends on its position), avalanched once at the
// end — about two multiplies per float, cheap enough that hashing stays a
// small fraction of a forward pass even for wide histogram encodings. Tree
// structure is disambiguated with explicit tags so e.g. a left-leaning and a
// right-leaning tree over the same values hash differently.
func hashRow(query []float64, forest []*treeconv.Tree) rowKey {
	h := rowKey{hi: 0x9e3779b97f4a7c15, lo: 0xc2b2ae3d27d4eb4f}
	h = h.mix(uint64(len(query)))
	for _, v := range query {
		h.hi = (h.hi ^ math.Float64bits(v)) * 0x00000100000001b3
		h.lo = (h.lo ^ math.Float64bits(v)) * 0x9ddfea08eb382d69
	}
	h = h.mix(uint64(len(forest)))
	for _, t := range forest {
		h = hashTree(h, t)
	}
	return h.mix(0)
}

func hashTree(h rowKey, t *treeconv.Tree) rowKey {
	if t == nil {
		return h.mix(0x0f0f0f0f0f0f0f0f)
	}
	h = h.mix(0x5555555555555555)
	for _, v := range t.Data {
		h.hi = (h.hi ^ math.Float64bits(v)) * 0x00000100000001b3
		h.lo = (h.lo ^ math.Float64bits(v)) * 0x9ddfea08eb382d69
	}
	h = hashTree(h, t.Left)
	return hashTree(h, t.Right)
}

// mix applies a full splitmix64-style avalanche to both lanes, used for
// structural tags and final whitening.
func (k rowKey) mix(x uint64) rowKey {
	hi := k.hi ^ x
	hi ^= hi >> 30
	hi *= 0xbf58476d1ce4e5b9
	hi ^= hi >> 27
	hi *= 0x94d049bb133111eb
	hi ^= hi >> 31
	lo := k.lo ^ x
	lo ^= lo >> 33
	lo *= 0xff51afd7ed558ccd
	lo ^= lo >> 29
	lo *= 0xc4ceb9fe1a85ec53
	lo ^= lo >> 32
	return rowKey{hi: hi, lo: lo}
}

// lookupCached fills out[i] for every row whose score is memoised and
// reports how many rows remain unresolved. Callers hold no locks.
func (s *Scheduler) lookupCached(keys []rowKey, out []float64, resolved []bool) int {
	missing := 0
	s.cacheMu.Lock()
	for i, k := range keys {
		if v, ok := s.cache[k]; ok {
			out[i] = v
			resolved[i] = true
		} else {
			missing++
		}
	}
	s.cacheMu.Unlock()
	return missing
}

// storeCached inserts freshly computed scores, evicting arbitrary entries
// once the cap is reached (cheap, and the cache dies with its snapshot on
// the next retraining swap anyway).
func (s *Scheduler) storeCached(keys []rowKey, scores []float64) {
	s.cacheMu.Lock()
	for i, k := range keys {
		if _, exists := s.cache[k]; !exists && len(s.cache) >= s.cacheCap {
			for victim := range s.cache {
				delete(s.cache, victim)
				break
			}
		}
		s.cache[k] = scores[i]
	}
	s.cacheMu.Unlock()
}

// PredictBatch submits one batch of encoded (query, forest) rows and blocks
// until its scores are available — fused with whatever other submissions
// were in flight, deduplicated against identical rows, and memoised for the
// backend's lifetime. It has the exact signature and semantics of the
// backend's PredictBatch — same scores, bit for bit — so callers treat a
// Scheduler as a drop-in predictor. The returned slice is owned by the
// caller.
func (s *Scheduler) PredictBatch(queries [][]float64, forests [][]*treeconv.Tree) []float64 {
	rows := len(queries)
	if rows == 0 {
		return nil
	}
	if s.active.Add(1) > 1 {
		s.lastCompanion.Store(time.Now().UnixNano())
	}
	defer s.active.Add(-1)
	s.counters.submissions.Add(1)
	s.counters.rows.Add(uint64(rows))

	// Memoisation fast path: hash every row and probe the cache once. A
	// fully-resolved submission — a stampeding hot query after its first
	// search — returns without touching the scheduler (or the linger) at
	// all; a partially-resolved one carries its probe results along so the
	// flusher only has to deal with the rows that actually missed.
	var (
		keys     []rowKey
		out      []float64
		resolved []bool
	)
	if s.cacheCap > 0 {
		keys = make([]rowKey, rows)
		for i := range queries {
			keys[i] = hashRow(queries[i], forests[i])
		}
		out = make([]float64, rows)
		resolved = make([]bool, rows)
		missing := s.lookupCached(keys, out, resolved)
		s.counters.cacheHits.Add(uint64(rows - missing))
		if missing == 0 {
			return out
		}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		// Drained scheduler (its snapshot was swapped away): run the rows
		// directly against the pinned backend, unfused. Same weights, same
		// result.
		sub := &submission{queries: queries, forests: forests, keys: keys, out: out, resolved: resolved}
		s.run([]*submission{sub})
		return sub.out
	}
	sub := &submission{queries: queries, forests: forests, keys: keys, out: out, resolved: resolved, done: make(chan struct{})}
	s.pending = append(s.pending, sub)
	s.pendingRows += rows
	if len(s.pending) > 1 {
		s.lastCompanion.Store(time.Now().UnixNano())
	}
	if s.pendingRows >= s.maxBatch {
		batch := s.takeLocked()
		s.mu.Unlock()
		s.run(batch)
		return sub.out
	}
	leader := len(s.pending) == 1
	s.mu.Unlock()

	if !leader {
		// A leader is already collecting the batch (or a batch-filler is
		// about to run us); wait for the scatter.
		<-sub.done
		return sub.out
	}

	// First pending submission: this goroutine collects companions, in two
	// stages. Stage one yields the processor a few times: on a saturated
	// machine the runnable concurrent searches advance straight to their own
	// submission points and pile onto the batch with zero idle time (on a
	// single core this cascade is the only way overlap can form at all);
	// the loop stops as soon as a yield round adds no rows. Stage two — only
	// if nothing joined but other submissions were observed in flight within
	// the last companionWindow — waits out the linger deadline for searches
	// mid-expansion on other cores. A search running alone passes through
	// both stages instantly: yields return immediately with no other
	// runnable goroutine, and without recent companionship there is no
	// linger, so an uncontended search never waits.
	joined := false
	prevRows := rows
	for i := 0; i < 8; i++ {
		runtime.Gosched()
		s.mu.Lock()
		if sub.taken {
			s.mu.Unlock()
			<-sub.done
			return sub.out
		}
		cur := s.pendingRows
		s.mu.Unlock()
		if cur == prevRows {
			break
		}
		prevRows = cur
		joined = true
	}
	if !joined && time.Since(time.Unix(0, s.lastCompanion.Load())) <= companionWindow {
		timer := time.NewTimer(s.linger)
		select {
		case <-sub.done:
			timer.Stop()
			return sub.out
		case <-timer.C:
		}
	}
	s.mu.Lock()
	if sub.taken {
		// Someone else (a batch-filler or Close) claimed the pending list
		// between the deadline firing and us reacquiring the lock.
		s.mu.Unlock()
		<-sub.done
		return sub.out
	}
	batch := s.takeLocked()
	s.mu.Unlock()
	s.run(batch)
	return sub.out
}

// takeLocked claims the whole pending list. Callers must hold mu.
func (s *Scheduler) takeLocked() []*submission {
	batch := s.pending
	s.pending = nil
	s.pendingRows = 0
	for _, b := range batch {
		b.taken = true
	}
	return batch
}

// run executes one coalesced forward pass for the batch: rows already
// memoised (or repeated within the batch) are resolved without backend work,
// the remaining distinct rows run through the backend in one fused pass, and
// per-caller results are scattered back in submission order.
func (s *Scheduler) run(batch []*submission) {
	total := 0
	for _, b := range batch {
		total += len(b.queries)
		if b.out == nil {
			b.out = make([]float64, len(b.queries))
		}
	}

	// rowMap maps each flat row of the batch (submissions in order) to its
	// index in the deduplicated to-score list, or -1 when the row was
	// already resolved from the cache. One flat index array keeps the
	// scatter allocation-light no matter how many duplicates a stampede
	// packs into one pass.
	var (
		queries = make([][]float64, 0, total)
		forests = make([][]*treeconv.Tree, 0, total)
		keys    = make([]rowKey, 0, total)
		rowMap  = make([]int, total)
		hits    uint64
	)
	if s.cacheCap > 0 {
		uniq := make(map[rowKey]int, total)
		flat := 0
		s.cacheMu.Lock()
		for _, b := range batch {
			for ri := range b.queries {
				if b.resolved[ri] {
					// Scored by the submit-time probe (and already counted
					// as a hit there).
					rowMap[flat] = -1
					flat++
					continue
				}
				k := b.keys[ri]
				if v, ok := s.cache[k]; ok {
					b.out[ri] = v
					rowMap[flat] = -1
					hits++
				} else if ui, ok := uniq[k]; ok {
					rowMap[flat] = ui
					hits++
				} else {
					ui := len(queries)
					uniq[k] = ui
					rowMap[flat] = ui
					queries = append(queries, b.queries[ri])
					forests = append(forests, b.forests[ri])
					keys = append(keys, k)
				}
				flat++
			}
		}
		s.cacheMu.Unlock()
	} else {
		flat := 0
		for _, b := range batch {
			for ri := range b.queries {
				rowMap[flat] = flat
				queries = append(queries, b.queries[ri])
				forests = append(forests, b.forests[ri])
				flat++
			}
		}
	}

	if len(queries) > 0 {
		scores := s.backend.PredictBatch(queries, forests)
		flat := 0
		for _, b := range batch {
			for ri := range b.queries {
				if ui := rowMap[flat]; ui >= 0 {
					b.out[ri] = scores[ui]
				}
				flat++
			}
		}
		if s.cacheCap > 0 {
			s.storeCached(keys, scores)
		}
		s.counters.batches.Add(1)
		s.counters.passSubs.Add(uint64(len(batch)))
		if len(batch) >= 2 {
			s.counters.fused.Add(1)
		}
	}
	if hits > 0 {
		s.counters.cacheHits.Add(hits)
	}
	for _, b := range batch {
		if b.done != nil {
			close(b.done)
		}
	}
}

// Close drains the scheduler: the pending batch (if any) runs against the
// backend, and every subsequent PredictBatch bypasses fusion with a direct
// backend call (the memoisation cache stays valid — it is pinned to the same
// immutable weights). Owners call it right after swapping in a successor
// scheduler for a new network snapshot, which is what guarantees one fused
// pass — and one cache — never mixes scores from two weight sets. Safe to
// call more than once, and safe concurrently with in-flight submissions.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	batch := s.takeLocked()
	s.mu.Unlock()
	if len(batch) > 0 {
		s.run(batch)
	}
}
