// Package bench holds the shared fixtures and runners behind the repo's
// benchmark-regression gate. cmd/neo-bench executes the suites with
// testing.Benchmark, emits one BENCH_<suite>.json per suite (ns/op and
// allocs/op per benchmark), and compares fresh results against the committed
// baselines — so CI fails when a hot path regresses rather than months later
// when someone happens to re-measure. The root *_bench_test.go files expose
// the same measurements through `go test -bench` for interactive use.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"neo/internal/checkpoint"
	"neo/internal/fastpath"
	"neo/internal/plan"
	"neo/internal/route"
	"neo/internal/sched"
	"neo/internal/search"
	"neo/internal/treeconv"
	"neo/internal/valuenet"
	"neo/pkg/neo"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Suite is the unit the gate compares: a named set of benchmark results,
// serialised as BENCH_<name>.json.
type Suite struct {
	Suite      string   `json:"suite"`
	Benchmarks []Result `json:"benchmarks"`
}

// Names lists the available suites in run order.
func Names() []string { return []string{"score", "train", "episode", "plan", "serve", "exec"} }

// Run executes one suite by name.
func Run(name string) (Suite, error) {
	switch name {
	case "score":
		return Scoring(), nil
	case "train":
		return Training(), nil
	case "episode":
		return Episode(), nil
	case "plan":
		return Planning(), nil
	case "serve":
		return Serving(), nil
	case "exec":
		return Exec(), nil
	default:
		return Suite{}, fmt.Errorf("bench: unknown suite %q (have %v)", name, Names())
	}
}

// measure runs fn under testing.Benchmark and records it.
func measure(name string, fn func(b *testing.B)) Result {
	r := testing.Benchmark(fn)
	return Result{Name: name, NsPerOp: float64(r.NsPerOp()), AllocsPerOp: r.AllocsPerOp()}
}

// fixture is the scoring/training workload: a value network plus a batch of
// candidate-plan forests shaped like one best-first expansion — batchSize
// left-deep join trees over ~10 relations, all sharing the query's encoding
// slice (the dedup hot path).
type fixture struct {
	net     *valuenet.Network
	queries [][]float64
	forests [][]*treeconv.Tree
	samples []valuenet.Sample
}

func newFixture(batchSize, trainWorkers int) *fixture {
	const queryDim, planDim = 32, 24
	rng := rand.New(rand.NewSource(99))
	randVec := func(dim int) []float64 {
		v := make([]float64, dim)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	var buildTree func(n int) *treeconv.Tree
	buildTree = func(n int) *treeconv.Tree {
		if n <= 1 {
			return treeconv.NewLeaf(randVec(planDim))
		}
		return treeconv.NewNode(randVec(planDim), buildTree(n-1), treeconv.NewLeaf(randVec(planDim)))
	}
	cfg := valuenet.DefaultConfig()
	cfg.TrainWorkers = trainWorkers
	f := &fixture{net: valuenet.New(queryDim, planDim, cfg)}
	f.net.FitTargetTransform([]float64{10, 100, 1000})
	query := randVec(queryDim)
	for i := 0; i < batchSize; i++ {
		f.queries = append(f.queries, query)
		f.forests = append(f.forests, []*treeconv.Tree{buildTree(10)})
		f.samples = append(f.samples, valuenet.Sample{
			Query:  query,
			Plan:   f.forests[i],
			Target: math.Exp(rng.Float64() * 8),
		})
	}
	return f
}

// Scoring measures batched versus sequential inference at batch 32 (the
// BenchmarkBatchedVsSequentialScoring pair), plus the reduced-precision
// snapshot kernels over the same batch: packed float32 tiled-GEMM panels and
// the calibrated int8 mode (calibrated on the fixture's own samples).
func Scoring() Suite {
	const batchSize = 32
	f := newFixture(batchSize, 1)
	s32 := f.net.SnapshotPrecision(valuenet.PrecisionFloat32, nil)
	s8 := f.net.SnapshotPrecision(valuenet.PrecisionInt8, f.samples)
	if s8.Precision() != valuenet.PrecisionInt8 {
		panic("bench: int8 snapshot fell back despite calibration samples")
	}
	return Suite{Suite: "score", Benchmarks: []Result{
		measure("scoring/sequential", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for j := 0; j < batchSize; j++ {
					f.net.Predict(f.queries[j], f.forests[j])
				}
			}
		}),
		measure("scoring/batched", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f.net.PredictBatch(f.queries, f.forests)
			}
		}),
		measure("scoring/f32", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s32.PredictBatch(f.queries, f.forests)
			}
		}),
		measure("scoring/int8", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s8.PredictBatch(f.queries, f.forests)
			}
		}),
	}}
}

// Training measures one gradient step over a 32-sample minibatch: the
// per-sample tape path versus the shared batched forward+backward pass (the
// BenchmarkBatchedTraining trio).
func Training() Suite {
	const batchSize = 32
	perSample := newFixture(batchSize, 1)
	batched := newFixture(batchSize, 1)
	workers := newFixture(batchSize, 4)
	return Suite{Suite: "train", Benchmarks: []Result{
		measure("training/per-sample", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				perSample.net.TrainBatchPerSample(perSample.samples)
			}
		}),
		measure("training/batched", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				batched.net.TrainBatch(batched.samples)
			}
		}),
		measure("training/batched-workers=4", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				workers.net.TrainBatch(workers.samples)
			}
		}),
	}}
}

// Episode measures one held-out evaluation sweep (plan search + simulated
// execution for a 16-query workload) over a bootstrapped system — the
// end-to-end number the episode pipeline optimises.
func Episode() Suite {
	sys, err := neo.Open(neo.Config{
		Dataset:          "imdb",
		Engine:           "postgres",
		Encoding:         neo.Histogram,
		Scale:            0.25,
		Seed:             17,
		SearchExpansions: 64,
		Episodes:         1,
		ValueNet: &neo.ValueNetConfig{
			QueryLayers:  []int{32, 16},
			TreeChannels: []int{16, 16, 8},
			HeadLayers:   []int{16},
			LearningRate: 2e-3,
			UseLayerNorm: true,
			Seed:         3,
		},
	})
	if err != nil {
		panic(fmt.Sprintf("bench: episode fixture: %v", err))
	}
	wl, err := sys.GenerateWorkload(16)
	if err != nil {
		panic(fmt.Sprintf("bench: episode workload: %v", err))
	}
	if err := sys.Bootstrap(wl.Queries[:8]); err != nil {
		panic(fmt.Sprintf("bench: episode bootstrap: %v", err))
	}
	return Suite{Suite: "episode", Benchmarks: []Result{
		measure("episode/evaluate-serial", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := sys.Neo.EvaluateParallel(wl.Queries, 1); err != nil {
					b.Fatal(err)
				}
			}
		}),
	}}
}

// Planning measures per-query planning latency on the episode fixture's
// workload: the statistics-free greedy fast path against the full DNN-guided
// best-first search, over exactly the queries the auto router sends to the
// fast path. Both sides are reported as P50/P99 percentiles (NsPerOp holds
// the percentile) rather than testing.Benchmark means, because the routing
// tentpole's claim is a latency-distribution one: the microsecond greedy
// ordering must undercut the millisecond search by orders of magnitude, not
// on average but on every routed query. The ratio gate in cmd/neo-bench pins
// plan/bestfirst-p50 / plan/fastpath-p50 >= 50.
func Planning() Suite {
	sys, routed := planFixture()

	var fastNS []float64
	for round := 0; round < 32; round++ {
		for _, q := range routed {
			res, err := fastpath.Plan(q, sys.Catalog)
			if err != nil {
				panic(fmt.Sprintf("bench: fastpath plan %s: %v", q.ID, err))
			}
			fastNS = append(fastNS, float64(res.Elapsed.Nanoseconds()))
		}
	}
	var bestNS []float64
	for round := 0; round < 4; round++ {
		for _, q := range routed {
			// The timed region includes scorer construction: the fast path
			// needs no scorer at all, so the search side pays for the whole
			// inference setup it requires.
			start := time.Now()
			if _, _, err := sys.OptimizeWith(q, sys.Neo.Scorer(q)); err != nil {
				panic(fmt.Sprintf("bench: best-first plan %s: %v", q.ID, err))
			}
			bestNS = append(bestNS, float64(time.Since(start).Nanoseconds()))
		}
	}
	return Suite{Suite: "plan", Benchmarks: []Result{
		{Name: "plan/fastpath-p50", NsPerOp: percentileNS(fastNS, 0.50)},
		{Name: "plan/fastpath-p99", NsPerOp: percentileNS(fastNS, 0.99)},
		{Name: "plan/bestfirst-p50", NsPerOp: percentileNS(bestNS, 0.50)},
		{Name: "plan/bestfirst-p99", NsPerOp: percentileNS(bestNS, 0.99)},
	}}
}

// planFixture bootstraps the episode-shaped system and returns the workload
// queries the auto router sends to the fast path.
func planFixture() (*neo.System, []*neo.Query) {
	sys, err := neo.Open(neo.Config{
		Dataset:          "imdb",
		Engine:           "postgres",
		Encoding:         neo.Histogram,
		Scale:            0.25,
		Seed:             17,
		SearchExpansions: 64,
		Episodes:         1,
		ValueNet: &neo.ValueNetConfig{
			QueryLayers:  []int{32, 16},
			TreeChannels: []int{16, 16, 8},
			HeadLayers:   []int{16},
			LearningRate: 2e-3,
			UseLayerNorm: true,
			Seed:         3,
		},
	})
	if err != nil {
		panic(fmt.Sprintf("bench: plan fixture: %v", err))
	}
	wl, err := sys.GenerateWorkload(16)
	if err != nil {
		panic(fmt.Sprintf("bench: plan workload: %v", err))
	}
	if err := sys.Bootstrap(wl.Queries[:8]); err != nil {
		panic(fmt.Sprintf("bench: plan bootstrap: %v", err))
	}
	router := route.New(route.Auto, route.Policy{})
	var routed []*neo.Query
	for _, q := range wl.Queries {
		if router.Decide(q).Fastpath {
			routed = append(routed, q)
		}
	}
	if len(routed) == 0 {
		panic("bench: plan fixture routed no queries to the fast path")
	}
	return sys, routed
}

// PlanningBenchmarks exposes the two sides of the planning-latency suite as
// sub-benchmarks for the root-level `go test -bench` entry point: one
// fast-path greedy ordering pass and one full best-first search per
// iteration, over the routed queries of the shared fixture.
func PlanningBenchmarks() (fastpathSide, bestfirst func(b *testing.B)) {
	sys, routed := planFixture()
	fastpathSide = func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := routed[i%len(routed)]
			if _, err := fastpath.Plan(q, sys.Catalog); err != nil {
				b.Fatal(err)
			}
		}
	}
	bestfirst = func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := routed[i%len(routed)]
			if _, _, err := sys.OptimizeWith(q, sys.Neo.Scorer(q)); err != nil {
				b.Fatal(err)
			}
		}
	}
	return fastpathSide, bestfirst
}

// percentileNS returns the p-th percentile (nearest-rank) of the samples.
func percentileNS(ns []float64, p float64) float64 {
	sort.Float64s(ns)
	idx := int(math.Ceil(p*float64(len(ns)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(ns) {
		idx = len(ns) - 1
	}
	return ns[idx]
}

// servingWorkers is the concurrency of the fused-serving benchmark: 8
// concurrent searches, the acceptance scenario of the scheduler.
const servingWorkers = 8

// servingHotQueries is how many distinct hot query structures the 8
// concurrent requests stampede over. Query popularity is heavily skewed in
// practice, so the post-swap stampede concentrates on the hottest handful of
// structures; four concurrent requests per hot query is the regime a
// retrain-every-N-feedbacks daemon re-enters constantly under load.
const servingHotQueries = 2

// scoreStream is the recorded scoring traffic of one real plan search: the
// sequence of ScoreBatch submissions BestFirst issued, pre-encoded into the
// (query, forest) rows the value network consumes. Replaying the streams of
// several concurrent searches reproduces exactly the inference load a
// serving daemon sees, with the row redundancy hot queries create.
type scoreStream struct {
	subs []scoreSub
}

type scoreSub struct {
	queries [][]float64
	forests [][]*treeconv.Tree
}

// streamRecorder captures every submission a search makes while passing it
// through to the real scorer.
type streamRecorder struct {
	inner search.BatchScorer
	subs  [][]*plan.Plan
}

func (r *streamRecorder) ScoreBatch(ps []*plan.Plan) []float64 {
	r.subs = append(r.subs, append([]*plan.Plan(nil), ps...))
	return r.inner.ScoreBatch(ps)
}

// servingFixture bootstraps a system and records the scoring traffic of one
// full BestFirst search per hot query. Rows are pre-encoded once — encoding
// is identical per-request work in both serving modes, so the benchmark pair
// isolates the layer the scheduler changes: the forward passes. Each stream
// shares one query-encoding slice per distinct query, exactly like core's
// per-query encoding cache does for concurrent requests.
func servingFixture() (snap, snap32 *valuenet.Snapshot, streams []scoreStream) {
	sys, err := neo.Open(neo.Config{
		Dataset:          "imdb",
		Engine:           "postgres",
		Encoding:         neo.Histogram,
		Scale:            0.25,
		Seed:             17,
		SearchExpansions: 64,
		Episodes:         1,
		ValueNet: &neo.ValueNetConfig{
			QueryLayers:  []int{32, 16},
			TreeChannels: []int{16, 16, 8},
			HeadLayers:   []int{16},
			LearningRate: 2e-3,
			UseLayerNorm: true,
			Seed:         3,
		},
	})
	if err != nil {
		panic(fmt.Sprintf("bench: serving fixture: %v", err))
	}
	wl, err := sys.GenerateWorkload(16)
	if err != nil {
		panic(fmt.Sprintf("bench: serving workload: %v", err))
	}
	if err := sys.Bootstrap(wl.Queries[:8]); err != nil {
		panic(fmt.Sprintf("bench: serving bootstrap: %v", err))
	}

	streams = make([]scoreStream, servingHotQueries)
	for i := 0; i < servingHotQueries; i++ {
		q := wl.Queries[i]
		rec := &streamRecorder{inner: sys.Neo.Scorer(q)}
		if _, err := search.BestFirst(q, rec, search.Options{
			Catalog:       sys.Catalog,
			MaxExpansions: sys.Config.SearchExpansions,
		}); err != nil {
			panic(fmt.Sprintf("bench: recording search for %s: %v", q.ID, err))
		}
		qEnc := sys.Featurizer.EncodeQuery(q)
		for _, ps := range rec.subs {
			sub := scoreSub{
				queries: make([][]float64, len(ps)),
				forests: make([][]*treeconv.Tree, len(ps)),
			}
			for j, p := range ps {
				sub.queries[j] = qEnc
				sub.forests[j] = sys.Neo.EncodePlanTrees(p)
			}
			streams[i].subs = append(streams[i].subs, sub)
		}
	}
	snap = sys.Neo.Snapshot()
	// Republish the same weights as a packed float32 snapshot for the
	// fused-f32 leg (the neo-serve default serving configuration).
	sys.Neo.Config.ScorePrecision = valuenet.PrecisionFloat32
	sys.Neo.RestoreSnapshot(sys.Neo.NetVersion())
	snap32 = sys.Neo.Snapshot()
	return snap, snap32, streams
}

// replayServing drives the 8 concurrent search streams through a predictor —
// the raw snapshot (private per-request scoring: every request pays its own
// forward passes) or a shared Scheduler (fused serving). Two workers replay
// each hot query's stream, modelling the cache-cold stampede right after a
// retraining swap empties the plan cache, when concurrent requests for the
// same hot query cannot be answered by memoised plans and race through
// identical searches.
func replayServing(predict sched.Backend, streams []scoreStream) {
	var wg sync.WaitGroup
	for g := 0; g < servingWorkers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, sub := range streams[g%len(streams)].subs {
				predict.PredictBatch(sub.queries, sub.forests)
			}
		}(g)
	}
	wg.Wait()
}

// ServingBenchmarks builds the fused-serving benchmark pair over a shared
// fixture: the scoring traffic of 8 concurrent searches stampeding over hot
// queries, served by private per-request scoring versus through the shared
// micro-batching scheduler (fusing co-resident submissions into shared
// passes and deduplicating identical rows over the same immutable weights).
// A fresh scheduler per op keeps its memoisation cache as cold as a
// just-swapped snapshot's. Scores are verified bit-identical before
// measuring; plan-level equality is locked down by the core and serve test
// suites. fusedF32 runs the same fused traffic against the float32-packed
// form of the same weights — the neo-serve default.
func ServingBenchmarks() (private, fused, fusedF32 func(b *testing.B)) {
	snap, snap32, streams := servingFixture()

	// Safety check: the gate compares throughput of the paths, so first
	// prove fusion produces the same bits as private scoring for one full
	// stream, at each precision against its own private baseline.
	for _, sn := range []*valuenet.Snapshot{snap, snap32} {
		s := sched.New(sn, sched.Options{})
		for _, sub := range streams[0].subs {
			coalesced := s.PredictBatch(sub.queries, sub.forests)
			direct := sn.PredictBatch(sub.queries, sub.forests)
			for i := range direct {
				if coalesced[i] != direct[i] {
					panic(fmt.Sprintf("bench: fused score %v != private score %v", coalesced[i], direct[i]))
				}
			}
		}
		s.Close()
	}

	private = func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			replayServing(snap, streams)
		}
	}
	bench := func(sn *valuenet.Snapshot) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := sched.New(sn, sched.Options{})
				replayServing(s, streams)
				s.Close()
			}
		}
	}
	return private, bench(snap), bench(snap32)
}

// Serving measures the ServingBenchmarks set (the BenchmarkFusedServing
// suite of the regression gate).
func Serving() Suite {
	private, fused, fusedF32 := ServingBenchmarks()
	return Suite{Suite: "serve", Benchmarks: []Result{
		measure("serving/private", private),
		measure("serving/fused", fused),
		measure("serving/fused-f32", fusedF32),
	}}
}

// FileName returns the JSON file name a suite is stored under.
func FileName(suite string) string { return "BENCH_" + suite + ".json" }

// Write serialises the suite as <dir>/BENCH_<suite>.json. The write is
// atomic (temp file in the same directory, then rename), so an interrupted
// run can never leave a truncated or half-written file where a committed CI
// baseline is expected.
func Write(dir string, s Suite) (string, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, FileName(s.Suite))
	err = checkpoint.AtomicWriteFile(path, 0o644, func(w io.Writer) error {
		_, err := w.Write(append(data, '\n'))
		return err
	})
	if err != nil {
		return "", err
	}
	return path, nil
}

// Load reads a suite file written by Write.
func Load(path string) (Suite, error) {
	var s Suite
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return s, nil
}

// Compare applies the regression gate: every benchmark present in both the
// baseline and the fresh suite must not regress by more than tolerance× in
// ns/op or allocs/op. The tolerance is deliberately generous (CI runners are
// slow, shared and single-core — the gate catches 2× blowups, not 5%
// jitter). Allocation counts get a small absolute slack so near-zero
// baselines don't flap. Returned problems are empty when the gate passes.
func Compare(baseline, fresh Suite, tolerance float64) []string {
	var problems []string
	base := make(map[string]Result, len(baseline.Benchmarks))
	for _, r := range baseline.Benchmarks {
		base[r.Name] = r
	}
	names := make([]string, 0, len(fresh.Benchmarks))
	freshBy := make(map[string]Result, len(fresh.Benchmarks))
	for _, r := range fresh.Benchmarks {
		names = append(names, r.Name)
		freshBy[r.Name] = r
	}
	sort.Strings(names)
	for _, name := range names {
		b, ok := base[name]
		if !ok {
			continue // new benchmark: becomes part of the baseline when committed
		}
		f := freshBy[name]
		if b.NsPerOp > 0 && f.NsPerOp > b.NsPerOp*tolerance {
			problems = append(problems, fmt.Sprintf(
				"%s: %.0f ns/op vs baseline %.0f ns/op (> %.1fx regression)",
				name, f.NsPerOp, b.NsPerOp, tolerance))
		}
		allocBudget := float64(b.AllocsPerOp)*tolerance + 16
		if float64(f.AllocsPerOp) > allocBudget {
			problems = append(problems, fmt.Sprintf(
				"%s: %d allocs/op vs baseline %d allocs/op (> %.1fx regression)",
				name, f.AllocsPerOp, b.AllocsPerOp, tolerance))
		}
	}
	for _, r := range baseline.Benchmarks {
		if _, ok := freshBy[r.Name]; !ok {
			problems = append(problems, fmt.Sprintf("%s: present in baseline but not measured", r.Name))
		}
	}
	return problems
}

// Speedup returns fast's speedup over slow (slowNs / fastNs) looked up by
// benchmark name, or an error when either is missing. The gate uses it for
// hardware-independent ratio checks (batched must actually beat
// per-sample, wherever it runs).
func Speedup(s Suite, slow, fast string) (float64, error) {
	var slowNs, fastNs float64
	for _, r := range s.Benchmarks {
		switch r.Name {
		case slow:
			slowNs = r.NsPerOp
		case fast:
			fastNs = r.NsPerOp
		}
	}
	if slowNs == 0 || fastNs == 0 {
		return 0, fmt.Errorf("bench: suite %s lacks %q or %q", s.Suite, slow, fast)
	}
	return slowNs / fastNs, nil
}
