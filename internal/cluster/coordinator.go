package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"neo/internal/cluster/proto"
)

// Coordinator defaults; see RolloutConfig.
const (
	defaultCanaryWait   = 2 * time.Second
	defaultMinFeedbacks = 8
	defaultTolerance    = 0.25
)

// RolloutConfig tunes the rollout coordinator.
type RolloutConfig struct {
	// Replicas are the fleet's base URLs. The first entry is the canary.
	Replicas []string
	// Tolerance is the allowed plan-quality regression before a canary is
	// rolled back: the canary window's mean feedback latency may exceed the
	// pre-canary window's mean by this fraction (default 0.25). A negative
	// tolerance demands improvement — useful to force a rollback in tests.
	Tolerance float64
	// CanaryWait bounds the canary soak: how long the coordinator waits for
	// the canary to accumulate MinFeedbacks quality samples before deciding
	// (default 2s). Expiring without enough samples promotes — no traffic is
	// no evidence of regression (fail-open; see OPERATIONS.md).
	CanaryWait time.Duration
	// MinFeedbacks is the canary-window sample size that ends the soak early
	// (default 8).
	MinFeedbacks uint64
	// Client carries the retry/timeout/backoff knobs for replica RPCs.
	Client proto.Client
}

func (c *RolloutConfig) canaryWait() time.Duration {
	if c.CanaryWait > 0 {
		return c.CanaryWait
	}
	return defaultCanaryWait
}

func (c *RolloutConfig) minFeedbacks() uint64 {
	if c.MinFeedbacks > 0 {
		return c.MinFeedbacks
	}
	return defaultMinFeedbacks
}

func (c *RolloutConfig) tolerance() float64 {
	if c.Tolerance != 0 {
		return c.Tolerance
	}
	return defaultTolerance
}

// Coordinator rolls published snapshots out to a replica fleet: canary the
// version on one replica, let it soak under live traffic, compare the
// canary's plan-quality window against its pre-canary window, then either
// promote the version to every replica or roll the canary back and bar the
// version. One rollout runs at a time; a version that was rolled back is
// never re-canaried.
type Coordinator struct {
	cfg    RolloutConfig
	client *proto.Client

	mu         sync.Mutex
	phase      string // "idle", "canary", "promote"
	version    uint64
	canary     string
	promoted   uint64
	promotions uint64
	rollbacks  uint64
	bad        map[uint64]bool
}

// NewCoordinator creates a coordinator over a replica fleet.
func NewCoordinator(cfg RolloutConfig) *Coordinator {
	client := cfg.Client
	return &Coordinator{cfg: cfg, client: &client, phase: "idle", bad: make(map[uint64]bool)}
}

// ErrRolloutBusy reports a rollout attempted while another is in flight.
var ErrRolloutBusy = errors.New("cluster: rollout already in flight")

// Rollout runs the canary state machine for version synchronously and
// reports whether the version was promoted fleet-wide. A false return with a
// nil error is a completed rollback decision, not a failure. stop aborts the
// soak early (trainer shutdown); nil is allowed.
func (c *Coordinator) Rollout(stop <-chan struct{}, version uint64) (promoted bool, err error) {
	if len(c.cfg.Replicas) == 0 {
		return false, fmt.Errorf("cluster: no replicas configured")
	}
	canary := c.cfg.Replicas[0]
	c.mu.Lock()
	if c.phase != "idle" {
		p, v := c.phase, c.version
		c.mu.Unlock()
		return false, fmt.Errorf("%w (%s of version %d)", ErrRolloutBusy, p, v)
	}
	if c.bad[version] {
		c.mu.Unlock()
		return false, fmt.Errorf("cluster: version %d was rolled back and is barred from re-canarying", version)
	}
	c.phase, c.version, c.canary = "canary", version, canary
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.phase, c.version, c.canary = "idle", 0, ""
		c.mu.Unlock()
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if stop != nil {
		go func() {
			select {
			case <-stop:
				cancel()
			case <-ctx.Done():
			}
		}()
	}

	// Record the canary's current version first: it is the rollback target,
	// and the version the rest of the fleet keeps serving during the soak.
	var base proto.ReplicaStats
	if err := c.client.GetJSON(ctx, canary+"/stats", &base); err != nil {
		return false, fmt.Errorf("cluster: canary %s unreachable: %w", canary, err)
	}
	if base.NetVersion == version {
		// Already serving it (e.g. a re-run after a partial promotion);
		// skip straight to promoting the rest of the fleet.
		return true, c.promote(ctx, version)
	}

	var loaded proto.SnapshotResponse
	if err := c.client.PostJSON(ctx, canary+"/admin/snapshot", proto.SnapshotRequest{Version: version}, &loaded); err != nil {
		return false, fmt.Errorf("cluster: canary %s refused snapshot %d: %w", canary, version, err)
	}

	quality, sampled := c.soak(ctx, canary)
	if c.regressed(quality, sampled) {
		c.mu.Lock()
		c.bad[version] = true
		c.rollbacks++
		c.mu.Unlock()
		// Roll the canary back to what it was serving. A failed rollback
		// leaves the canary on the bad version — surfaced as an error so the
		// operator (or the next rollout) intervenes.
		var rb proto.SnapshotResponse
		if err := c.client.PostJSON(ctx, canary+"/admin/snapshot", proto.SnapshotRequest{Version: base.NetVersion}, &rb); err != nil {
			return false, fmt.Errorf("cluster: version %d rolled back, but restoring canary %s to version %d failed: %w",
				version, canary, base.NetVersion, err)
		}
		return false, nil
	}
	return true, c.promote(ctx, version)
}

// soak polls the canary's /stats until its quality window holds
// MinFeedbacks samples or CanaryWait expires, returning the last observed
// window.
func (c *Coordinator) soak(ctx context.Context, canary string) (proto.QualityStats, bool) {
	deadline := time.After(c.cfg.canaryWait())
	interval := c.cfg.canaryWait() / 20
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var last proto.QualityStats
	seen := false
	for {
		select {
		case <-ctx.Done():
			return last, seen
		case <-deadline:
			return last, seen
		case <-ticker.C:
			var st proto.ReplicaStats
			if err := c.client.GetJSON(ctx, canary+"/stats", &st); err != nil || st.Cluster == nil {
				continue
			}
			last, seen = st.Cluster.Quality, true
			if last.WindowFeedbacks >= c.cfg.minFeedbacks() {
				return last, true
			}
		}
	}
}

// regressed applies the promotion rule: the canary regressed when both
// windows carry samples and the canary window's mean feedback latency
// exceeds the pre-canary window's mean by more than Tolerance. Missing
// evidence — an unreachable canary /stats, an idle fleet, a fresh replica
// with no pre-canary window — promotes (fail-open): no traffic is no
// evidence of regression, and a frozen fleet is the worse failure mode.
func (c *Coordinator) regressed(q proto.QualityStats, sampled bool) bool {
	if !sampled || q.WindowFeedbacks == 0 || q.PrevWindowFeedbacks == 0 {
		return false
	}
	return q.WindowMeanLatencyMS > q.PrevWindowMeanMS*(1+c.cfg.tolerance())
}

// promote pushes version to every non-canary replica and records the
// promotion. Replicas that fail to load keep serving their current snapshot
// (degraded, not down); their errors are joined and surfaced.
func (c *Coordinator) promote(ctx context.Context, version uint64) error {
	c.mu.Lock()
	c.phase = "promote"
	c.mu.Unlock()
	var errs []error
	for _, replica := range c.cfg.Replicas[1:] {
		var resp proto.SnapshotResponse
		if err := c.client.PostJSON(ctx, replica+"/admin/snapshot", proto.SnapshotRequest{Version: version}, &resp); err != nil {
			errs = append(errs, fmt.Errorf("promoting version %d to %s: %w", version, replica, err))
		}
	}
	c.mu.Lock()
	c.promoted = version
	c.promotions++
	c.mu.Unlock()
	return errors.Join(errs...)
}

// Status snapshots the rollout state for /stats.
func (c *Coordinator) Status() proto.RolloutStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	bad := make([]uint64, 0, len(c.bad))
	for v := range c.bad {
		bad = append(bad, v)
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i] < bad[j] })
	return proto.RolloutStatus{
		Phase:       c.phase,
		Version:     c.version,
		Canary:      c.canary,
		Promoted:    c.promoted,
		Promotions:  c.promotions,
		Rollbacks:   c.rollbacks,
		BadVersions: bad,
	}
}
