package proto

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func spec(id string, rels []string, joins []JoinSpec, preds []PredicateSpec) QuerySpec {
	return QuerySpec{ID: id, Relations: rels, Joins: joins, Predicates: preds}
}

// TestSpecKeyCanonical pins that the routing key ignores IDs and every
// ordering degree of freedom a client has, while distinguishing genuinely
// different queries — the property that makes plan-cache sharding stable.
func TestSpecKeyCanonical(t *testing.T) {
	a := spec("q1", []string{"title", "movie_keyword"},
		[]JoinSpec{{Left: "movie_keyword.movie_id", Right: "title.id"}},
		[]PredicateSpec{
			{Column: "title.production_year", Op: ">=", Value: json.RawMessage(`1990`)},
			{Column: "title.kind", Op: "=", Value: json.RawMessage(`"movie"`)},
		})
	b := spec("something-else", []string{"movie_keyword", "title"},
		[]JoinSpec{{Left: "title.id", Right: "movie_keyword.movie_id"}}, // sides swapped
		[]PredicateSpec{
			{Column: "title.kind", Op: "=", Value: json.RawMessage(`"movie"`)}, // order swapped
			{Column: "title.production_year", Op: ">=", Value: json.RawMessage(`1990`)},
		})
	if SpecKey(&a) != SpecKey(&b) {
		t.Fatalf("structurally identical specs key differently:\n  %s\n  %s", SpecKey(&a), SpecKey(&b))
	}
	c := a
	c.Predicates = []PredicateSpec{
		{Column: "title.production_year", Op: ">=", Value: json.RawMessage(`1991`)},
		{Column: "title.kind", Op: "=", Value: json.RawMessage(`"movie"`)},
	}
	if SpecKey(&a) == SpecKey(&c) {
		t.Fatal("different literals produced the same routing key")
	}
	d := a
	d.Joins = nil
	if SpecKey(&a) == SpecKey(&d) {
		t.Fatal("dropping the join did not change the routing key")
	}
}

// TestClientRetriesTransientFailures pins the retry/backoff contract: 5xx
// and transport errors are retried, the call succeeds once the peer
// recovers, and 4xx responses surface immediately with no retry burned.
func TestClientRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			http.Error(w, "starting up", http.StatusServiceUnavailable)
			return
		}
		_ = json.NewEncoder(w).Encode(map[string]int{"ok": 1})
	}))
	defer ts.Close()

	c := &Client{Attempts: 4, Backoff: time.Millisecond}
	var out map[string]int
	if err := c.GetJSON(context.Background(), ts.URL, &out); err != nil {
		t.Fatalf("call did not survive transient 503s: %v", err)
	}
	if out["ok"] != 1 || calls.Load() != 3 {
		t.Fatalf("out=%v calls=%d", out, calls.Load())
	}

	calls.Store(0)
	ts2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"stale"}`, http.StatusConflict)
	}))
	defer ts2.Close()
	err := c.PostJSON(context.Background(), ts2.URL, map[string]int{}, nil)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusConflict {
		t.Fatalf("want StatusError 409, got %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("409 was retried %d times; must not be", calls.Load())
	}
	if Retryable(err) {
		t.Error("409 reported retryable")
	}
}

// TestClientExhaustsRetries pins that a dead peer costs exactly Attempts
// tries and returns the last error instead of hanging.
func TestClientExhaustsRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	var calls atomic.Int64
	wrapped := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	ts.Close()
	defer wrapped.Close()

	c := &Client{Attempts: 3, Backoff: time.Millisecond}
	if err := c.GetJSON(context.Background(), wrapped.URL, nil); err == nil {
		t.Fatal("call to a 500-ing peer succeeded")
	}
	if calls.Load() != 3 {
		t.Fatalf("burned %d attempts, want 3", calls.Load())
	}
	// A closed listener (connection refused) is also retried, then surfaced.
	if err := c.GetJSON(context.Background(), ts.URL, nil); err == nil {
		t.Fatal("call to a closed listener succeeded")
	}
}

// TestClientHonoursContext pins that cancellation cuts the backoff wait
// short instead of sleeping it out.
func TestClientHonoursContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()
	c := &Client{Attempts: 10, Backoff: time.Hour}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.GetJSON(ctx, ts.URL, nil)
	if err == nil {
		t.Fatal("cancelled call succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("cancellation took %v; the hour-long backoff was slept", time.Since(start))
	}
}
