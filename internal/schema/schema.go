// Package schema defines the relational catalog model used throughout the
// repository: tables, columns, foreign keys and secondary indexes.
//
// The catalog is the single source of truth for the feature-space layout of
// Neo's encodings: the number of relations |R| determines the width of the
// plan-level node vectors (|J| + 2|R|), and the global attribute ordering
// determines the layout of the column-predicate vector in the query-level
// encoding (Section 3.2 of the paper).
package schema

import (
	"fmt"
	"sort"
)

// ColType is the logical type of a column. The reproduction only needs two
// value domains: integers (keys, years, numeric measures) and strings
// (categorical values such as genres, keywords, names).
type ColType int

const (
	// IntType marks integer-valued columns.
	IntType ColType = iota
	// StringType marks string-valued (categorical) columns.
	StringType
)

// String implements fmt.Stringer.
func (t ColType) String() string {
	switch t {
	case IntType:
		return "int"
	case StringType:
		return "string"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// Column describes a single attribute of a table.
type Column struct {
	// Name is the column name, unique within its table.
	Name string
	// Type is the logical value domain of the column.
	Type ColType
	// Distinct is the (approximate) number of distinct values the data
	// generator will place in the column. It is advisory; statistics are
	// always rebuilt from the actual data.
	Distinct int
}

// Index describes a secondary index available to the execution engine.
type Index struct {
	// Table is the indexed table.
	Table string
	// Column is the indexed column.
	Column string
	// Unique records whether the indexed column is a key.
	Unique bool
}

// ForeignKey declares that FromTable.FromColumn references ToTable.ToColumn.
// Foreign keys define the join graph that workload generators draw equi-join
// predicates from.
type ForeignKey struct {
	FromTable  string
	FromColumn string
	ToTable    string
	ToColumn   string
}

// Table describes a relation: its name, primary key and columns.
type Table struct {
	// Name is the relation name, unique within the catalog.
	Name string
	// PrimaryKey is the name of the primary-key column (may be empty).
	PrimaryKey string
	// Columns lists the attributes in declaration order.
	Columns []Column
}

// Column returns the column with the given name and whether it exists.
func (t *Table) Column(name string) (Column, bool) {
	for _, c := range t.Columns {
		if c.Name == name {
			return c, true
		}
	}
	return Column{}, false
}

// ColumnIndex returns the positional index of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// ColumnRef names a column within a table ("table.column").
type ColumnRef struct {
	Table  string
	Column string
}

// String implements fmt.Stringer.
func (c ColumnRef) String() string { return c.Table + "." + c.Column }

// Catalog is an immutable collection of tables, foreign keys and indexes.
// Build one with NewCatalog; lookups are O(1) afterwards.
type Catalog struct {
	tables      []*Table
	foreignKeys []ForeignKey
	indexes     []Index

	tableIdx map[string]int
	// attrIdx maps "table.column" to a position in the global attribute
	// ordering used by the query-level encoding.
	attrIdx  map[string]int
	attrList []ColumnRef
	indexed  map[string]bool
	// fkByPair maps the unordered table pair "a|b" (a < b) to the join
	// columns connecting them.
	fkByPair map[string]ForeignKey
}

// NewCatalog validates the given tables, foreign keys and indexes and builds
// the lookup structures. Table order is preserved; it defines the relation
// ordering |R| used by the plan-level encoding.
func NewCatalog(tables []*Table, fks []ForeignKey, indexes []Index) (*Catalog, error) {
	c := &Catalog{
		tables:      tables,
		foreignKeys: fks,
		indexes:     indexes,
		tableIdx:    make(map[string]int, len(tables)),
		attrIdx:     make(map[string]int),
		indexed:     make(map[string]bool),
		fkByPair:    make(map[string]ForeignKey),
	}
	for i, t := range tables {
		if t == nil || t.Name == "" {
			return nil, fmt.Errorf("schema: table %d is nil or unnamed", i)
		}
		if _, dup := c.tableIdx[t.Name]; dup {
			return nil, fmt.Errorf("schema: duplicate table %q", t.Name)
		}
		c.tableIdx[t.Name] = i
		seen := make(map[string]bool, len(t.Columns))
		for _, col := range t.Columns {
			if col.Name == "" {
				return nil, fmt.Errorf("schema: table %q has an unnamed column", t.Name)
			}
			if seen[col.Name] {
				return nil, fmt.Errorf("schema: table %q has duplicate column %q", t.Name, col.Name)
			}
			seen[col.Name] = true
			ref := ColumnRef{Table: t.Name, Column: col.Name}
			c.attrIdx[ref.String()] = len(c.attrList)
			c.attrList = append(c.attrList, ref)
		}
		if t.PrimaryKey != "" && !seen[t.PrimaryKey] {
			return nil, fmt.Errorf("schema: table %q primary key %q is not a column", t.Name, t.PrimaryKey)
		}
	}
	for _, fk := range fks {
		if err := c.checkColumn(fk.FromTable, fk.FromColumn); err != nil {
			return nil, fmt.Errorf("schema: foreign key source: %w", err)
		}
		if err := c.checkColumn(fk.ToTable, fk.ToColumn); err != nil {
			return nil, fmt.Errorf("schema: foreign key target: %w", err)
		}
		c.fkByPair[pairKey(fk.FromTable, fk.ToTable)] = fk
	}
	for _, idx := range indexes {
		if err := c.checkColumn(idx.Table, idx.Column); err != nil {
			return nil, fmt.Errorf("schema: index: %w", err)
		}
		c.indexed[idx.Table+"."+idx.Column] = true
	}
	return c, nil
}

// MustNewCatalog is NewCatalog but panics on error. Intended for statically
// known schemas built in code (the data generators).
func MustNewCatalog(tables []*Table, fks []ForeignKey, indexes []Index) *Catalog {
	c, err := NewCatalog(tables, fks, indexes)
	if err != nil {
		panic(err)
	}
	return c
}

func (c *Catalog) checkColumn(table, column string) error {
	ti, ok := c.tableIdx[table]
	if !ok {
		return fmt.Errorf("unknown table %q", table)
	}
	if _, ok := c.tables[ti].Column(column); !ok {
		return fmt.Errorf("unknown column %q.%q", table, column)
	}
	return nil
}

func pairKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// Tables returns the tables in catalog order.
func (c *Catalog) Tables() []*Table { return c.tables }

// NumRelations returns |R|, the number of relations in the catalog.
func (c *Catalog) NumRelations() int { return len(c.tables) }

// NumAttributes returns the total number of attributes across all tables,
// i.e. the length of the 1-Hot column-predicate vector.
func (c *Catalog) NumAttributes() int { return len(c.attrList) }

// Table returns the table with the given name and whether it exists.
func (c *Catalog) Table(name string) (*Table, bool) {
	i, ok := c.tableIdx[name]
	if !ok {
		return nil, false
	}
	return c.tables[i], true
}

// TableIndex returns the position of the named table in the catalog's
// relation ordering, or -1 if the table does not exist.
func (c *Catalog) TableIndex(name string) int {
	i, ok := c.tableIdx[name]
	if !ok {
		return -1
	}
	return i
}

// AttributeIndex returns the position of table.column in the global
// attribute ordering, or -1 if it does not exist.
func (c *Catalog) AttributeIndex(table, column string) int {
	i, ok := c.attrIdx[table+"."+column]
	if !ok {
		return -1
	}
	return i
}

// Attributes returns all column references in global attribute order.
func (c *Catalog) Attributes() []ColumnRef { return c.attrList }

// ForeignKeys returns the declared foreign keys.
func (c *Catalog) ForeignKeys() []ForeignKey { return c.foreignKeys }

// Indexes returns the declared secondary indexes.
func (c *Catalog) Indexes() []Index { return c.indexes }

// HasIndex reports whether a secondary index exists on table.column.
// Primary-key columns are always considered indexed.
func (c *Catalog) HasIndex(table, column string) bool {
	if c.indexed[table+"."+column] {
		return true
	}
	if t, ok := c.Table(table); ok && t.PrimaryKey == column && column != "" {
		return true
	}
	return false
}

// JoinColumns returns the foreign key connecting two tables (in either
// direction) and whether such a key exists. The returned key is oriented as
// declared, not as queried.
func (c *Catalog) JoinColumns(a, b string) (ForeignKey, bool) {
	fk, ok := c.fkByPair[pairKey(a, b)]
	return fk, ok
}

// JoinableNeighbors returns, for the given table, the names of every table it
// shares a foreign key with, sorted for determinism.
func (c *Catalog) JoinableNeighbors(table string) []string {
	var out []string
	for _, fk := range c.foreignKeys {
		switch table {
		case fk.FromTable:
			out = append(out, fk.ToTable)
		case fk.ToTable:
			out = append(out, fk.FromTable)
		}
	}
	sort.Strings(out)
	// Dedupe (a pair of tables may share only one FK by construction, but a
	// table may appear twice if declared redundantly).
	out = dedupeSorted(out)
	return out
}

func dedupeSorted(in []string) []string {
	if len(in) == 0 {
		return in
	}
	out := in[:1]
	for _, s := range in[1:] {
		if s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}
