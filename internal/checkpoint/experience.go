// Experience serialization: queries (deduplicated by ID + structural
// signature, so the hundreds of entries a long-running optimizer accumulates
// per query share one stored query and one restored *query.Query pointer),
// plan trees, latencies and the per-query baselines.
package checkpoint

import (
	"fmt"
	"io"
	"sort"

	"neo/internal/core"
	"neo/internal/plan"
	"neo/internal/query"
	"neo/internal/schema"
	"neo/internal/storage"
	"neo/internal/wire"
)

func writeExperience(w io.Writer, entries []core.Entry, baselines map[string]float64) error {
	if len(entries) > maxEntries {
		return fmt.Errorf("checkpoint: %d experience entries exceed the loadable limit %d "+
			"(trim the experience before saving)", len(entries), maxEntries)
	}
	// Deduplicated query table, in first-appearance order. Deduplication
	// keys on ID *and* structural signature: entries of one query share a
	// single stored (and restored) *query.Query even when the producer built
	// a fresh Query value per request (neo-serve does), while two
	// structurally different queries under one caller-supplied ID stay two
	// stored queries — collapsing those would re-bind a plan to a query
	// whose relations it does not cover on restore.
	dedupKey := func(q *query.Query) string { return q.ID + "\x00" + q.Signature() }
	index := make(map[string]int)
	var queries []*query.Query
	for _, e := range entries {
		if _, ok := index[dedupKey(e.Query)]; !ok {
			index[dedupKey(e.Query)] = len(queries)
			queries = append(queries, e.Query)
		}
	}
	if err := wire.WriteU32(w, uint32(len(queries))); err != nil {
		return err
	}
	for _, q := range queries {
		if err := writeQuery(w, q); err != nil {
			return err
		}
	}
	if err := wire.WriteU32(w, uint32(len(entries))); err != nil {
		return err
	}
	for _, e := range entries {
		if err := wire.WriteU32(w, uint32(index[dedupKey(e.Query)])); err != nil {
			return err
		}
		if err := writePlan(w, e.Plan); err != nil {
			return err
		}
		if err := wire.WriteF64(w, e.Latency); err != nil {
			return err
		}
	}
	// Baselines, keyed by query ID (IDs outside the experience are legal —
	// evaluation-only queries can have baselines too). Sorted so the file is
	// deterministic.
	ids := make([]string, 0, len(baselines))
	for id := range baselines {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	if err := wire.WriteU32(w, uint32(len(ids))); err != nil {
		return err
	}
	for _, id := range ids {
		if err := wire.WriteString(w, id); err != nil {
			return err
		}
		if err := wire.WriteF64(w, baselines[id]); err != nil {
			return err
		}
	}
	return nil
}

// Count bounds for the experience section: far above anything a real system
// accumulates, low enough that a bit-rotted or crafted count prefix fails
// with a clean error instead of a multi-gigabyte allocation. (Section CRCs
// catch random corruption; these bounds are the second line of defence.)
const (
	maxQueries  = 1 << 20
	maxEntries  = 1 << 22
	maxPerQuery = 1 << 16 // relations / joins / predicates per query
)

// readCount reads a u32 count prefix and validates it against a bound.
func readCount(r io.Reader, what string, bound uint32) (int, error) {
	n, err := wire.ReadU32(r)
	if err != nil {
		return 0, err
	}
	if n > bound {
		return 0, fmt.Errorf("%s count %d exceeds limit %d (corrupt count prefix?)", what, n, bound)
	}
	return int(n), nil
}

func readExperience(r io.Reader) ([]core.Entry, map[string]float64, error) {
	nq, err := readCount(r, "query", maxQueries)
	if err != nil {
		return nil, nil, err
	}
	queries := make([]*query.Query, nq)
	for i := range queries {
		if queries[i], err = readQuery(r); err != nil {
			return nil, nil, err
		}
	}
	ne, err := readCount(r, "entry", maxEntries)
	if err != nil {
		return nil, nil, err
	}
	entries := make([]core.Entry, ne)
	for i := range entries {
		qi, err := wire.ReadU32(r)
		if err != nil {
			return nil, nil, err
		}
		if int(qi) >= len(queries) {
			return nil, nil, fmt.Errorf("entry %d references query %d of %d", i, qi, len(queries))
		}
		q := queries[qi]
		p, err := readPlan(r, q)
		if err != nil {
			return nil, nil, err
		}
		lat, err := wire.ReadF64(r)
		if err != nil {
			return nil, nil, err
		}
		entries[i] = core.Entry{Query: q, Plan: p, Latency: lat}
	}
	nb, err := readCount(r, "baseline", maxEntries)
	if err != nil {
		return nil, nil, err
	}
	baselines := make(map[string]float64, nb)
	for i := 0; i < nb; i++ {
		id, err := wire.ReadString(r)
		if err != nil {
			return nil, nil, err
		}
		if baselines[id], err = wire.ReadF64(r); err != nil {
			return nil, nil, err
		}
	}
	return entries, baselines, nil
}

func writeQuery(w io.Writer, q *query.Query) error {
	if err := wire.WriteString(w, q.ID); err != nil {
		return err
	}
	if err := wire.WriteU32(w, uint32(len(q.Relations))); err != nil {
		return err
	}
	for _, rel := range q.Relations {
		if err := wire.WriteString(w, rel); err != nil {
			return err
		}
	}
	if err := wire.WriteU32(w, uint32(len(q.Joins))); err != nil {
		return err
	}
	for _, j := range q.Joins {
		for _, s := range []string{j.LeftTable, j.LeftColumn, j.RightTable, j.RightColumn} {
			if err := wire.WriteString(w, s); err != nil {
				return err
			}
		}
	}
	if err := wire.WriteU32(w, uint32(len(q.Predicates))); err != nil {
		return err
	}
	for _, p := range q.Predicates {
		if err := wire.WriteString(w, p.Table); err != nil {
			return err
		}
		if err := wire.WriteString(w, p.Column); err != nil {
			return err
		}
		if err := wire.WriteU8(w, uint8(p.Op)); err != nil {
			return err
		}
		if err := writeValue(w, p.Value); err != nil {
			return err
		}
	}
	return nil
}

func readQuery(r io.Reader) (*query.Query, error) {
	id, err := wire.ReadString(r)
	if err != nil {
		return nil, err
	}
	nr, err := readCount(r, "relation", maxPerQuery)
	if err != nil {
		return nil, err
	}
	rels := make([]string, nr)
	for i := range rels {
		if rels[i], err = wire.ReadString(r); err != nil {
			return nil, err
		}
	}
	nj, err := readCount(r, "join", maxPerQuery)
	if err != nil {
		return nil, err
	}
	joins := make([]query.JoinPredicate, nj)
	for i := range joins {
		var parts [4]string
		for k := range parts {
			if parts[k], err = wire.ReadString(r); err != nil {
				return nil, err
			}
		}
		joins[i] = query.JoinPredicate{
			LeftTable: parts[0], LeftColumn: parts[1],
			RightTable: parts[2], RightColumn: parts[3],
		}
	}
	np, err := readCount(r, "predicate", maxPerQuery)
	if err != nil {
		return nil, err
	}
	preds := make([]query.Predicate, np)
	for i := range preds {
		table, err := wire.ReadString(r)
		if err != nil {
			return nil, err
		}
		column, err := wire.ReadString(r)
		if err != nil {
			return nil, err
		}
		op, err := wire.ReadU8(r)
		if err != nil {
			return nil, err
		}
		val, err := readValue(r)
		if err != nil {
			return nil, err
		}
		preds[i] = query.Predicate{Table: table, Column: column, Op: query.CmpOp(op), Value: val}
	}
	return query.New(id, rels, joins, preds), nil
}

func writeValue(w io.Writer, v storage.Value) error {
	if err := wire.WriteU8(w, uint8(v.Kind)); err != nil {
		return err
	}
	if err := wire.WriteI64(w, v.Int); err != nil {
		return err
	}
	return wire.WriteString(w, v.Str)
}

func readValue(r io.Reader) (storage.Value, error) {
	kind, err := wire.ReadU8(r)
	if err != nil {
		return storage.Value{}, err
	}
	i, err := wire.ReadI64(r)
	if err != nil {
		return storage.Value{}, err
	}
	s, err := wire.ReadString(r)
	if err != nil {
		return storage.Value{}, err
	}
	return storage.Value{Kind: schema.ColType(kind), Int: i, Str: s}, nil
}

// Node tags in the plan-tree encoding.
const (
	nodeLeaf = 0
	nodeJoin = 1
)

func writePlan(w io.Writer, p *plan.Plan) error {
	if err := wire.WriteU32(w, uint32(len(p.Roots))); err != nil {
		return err
	}
	for _, root := range p.Roots {
		if err := writeNode(w, root); err != nil {
			return err
		}
	}
	return nil
}

func readPlan(r io.Reader, q *query.Query) (*plan.Plan, error) {
	n, err := wire.ReadU32(r)
	if err != nil {
		return nil, err
	}
	if n > 4096 {
		return nil, fmt.Errorf("plan declares %d roots", n)
	}
	roots := make([]*plan.Node, n)
	for i := range roots {
		if roots[i], err = readNode(r, 0); err != nil {
			return nil, err
		}
	}
	return &plan.Plan{Query: q, Roots: roots}, nil
}

func writeNode(w io.Writer, n *plan.Node) error {
	if n.IsLeaf() {
		if err := wire.WriteU8(w, nodeLeaf); err != nil {
			return err
		}
		if err := wire.WriteU8(w, uint8(n.Scan)); err != nil {
			return err
		}
		return wire.WriteString(w, n.Table)
	}
	if err := wire.WriteU8(w, nodeJoin); err != nil {
		return err
	}
	if err := wire.WriteU8(w, uint8(n.Join)); err != nil {
		return err
	}
	if err := writeNode(w, n.Left); err != nil {
		return err
	}
	return writeNode(w, n.Right)
}

// maxPlanDepth bounds recursion while reading plan trees, so a corrupted
// stream cannot drive unbounded stack growth.
const maxPlanDepth = 512

func readNode(r io.Reader, depth int) (*plan.Node, error) {
	if depth > maxPlanDepth {
		return nil, fmt.Errorf("plan tree deeper than %d", maxPlanDepth)
	}
	tag, err := wire.ReadU8(r)
	if err != nil {
		return nil, err
	}
	switch tag {
	case nodeLeaf:
		scan, err := wire.ReadU8(r)
		if err != nil {
			return nil, err
		}
		table, err := wire.ReadString(r)
		if err != nil {
			return nil, err
		}
		return &plan.Node{Scan: plan.ScanType(scan), Table: table}, nil
	case nodeJoin:
		op, err := wire.ReadU8(r)
		if err != nil {
			return nil, err
		}
		left, err := readNode(r, depth+1)
		if err != nil {
			return nil, err
		}
		right, err := readNode(r, depth+1)
		if err != nil {
			return nil, err
		}
		return &plan.Node{Join: plan.JoinOp(op), Left: left, Right: right}, nil
	default:
		return nil, fmt.Errorf("unknown plan-node tag %d", tag)
	}
}
