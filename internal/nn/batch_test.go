package nn

import (
	"math/rand"
	"testing"
)

func randRows(rng *rand.Rand, rows, dim int) []float64 {
	xs := make([]float64, rows*dim)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	return xs
}

func TestLinearForwardBatchMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lin := NewLinear(7, 5, rng)
	const rows = 9
	xs := randRows(rng, rows, 7)
	var arena Arena
	ys := lin.ForwardBatch(xs, rows, &arena)
	for r := 0; r < rows; r++ {
		want := lin.Forward(xs[r*7 : (r+1)*7])
		got := ys[r*5 : (r+1)*5]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("row %d out %d: batch %v != per-sample %v", r, i, got[i], want[i])
			}
		}
	}
}

func TestMLPForwardBatchMatchesForward(t *testing.T) {
	for _, useNorm := range []bool{false, true} {
		rng := rand.New(rand.NewSource(2))
		mlp := NewMLP([]int{6, 12, 8, 3}, useNorm, rng)
		const rows = 11
		xs := randRows(rng, rows, 6)
		var arena Arena
		ys := mlp.ForwardBatch(xs, rows, &arena)
		for r := 0; r < rows; r++ {
			want := mlp.Forward(xs[r*6 : (r+1)*6]).Output()
			got := ys[r*3 : (r+1)*3]
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("norm=%v row %d out %d: batch %v != per-sample %v", useNorm, r, i, got[i], want[i])
				}
			}
		}
	}
}

func TestArenaReuseDoesNotAllocate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mlp := NewMLP([]int{8, 16, 4}, true, rng)
	const rows = 16
	xs := randRows(rng, rows, 8)
	var arena Arena
	// Warm up: grows the arena to its steady-state size.
	mlp.ForwardBatch(xs, rows, &arena)
	arena.Reset()
	mlp.ForwardBatch(xs, rows, &arena)
	arena.Reset()
	allocs := testing.AllocsPerRun(50, func() {
		mlp.ForwardBatch(xs, rows, &arena)
		arena.Reset()
	})
	if allocs > 0 {
		t.Fatalf("warmed-up batched forward allocated %.1f times per run, want 0", allocs)
	}
}

func TestArenaOverflowSlicesStayValid(t *testing.T) {
	var arena Arena
	a := arena.Alloc(4) // overflow: arena starts empty
	for i := range a {
		a[i] = float64(i)
	}
	b := arena.Alloc(4)
	for i := range b {
		b[i] = float64(10 + i)
	}
	for i := range a {
		if a[i] != float64(i) || b[i] != float64(10+i) {
			t.Fatal("overflow allocation clobbered an earlier slice")
		}
	}
	arena.Reset()
	if got := arena.Alloc(8); len(got) != 8 {
		t.Fatalf("post-reset alloc length %d, want 8", len(got))
	}
}
