package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"neo/internal/cluster/proto"
	"neo/internal/serve"
	"neo/pkg/neo"
)

// TestThreeReplicaSoak is the distributed tier's acceptance test: a trainer
// and three replicas under sustained concurrent optimize+feedback load
// through the fleet client, with
//
//   - a mid-soak snapshot promotion through the rollout coordinator
//     (canary → quality check → fleet-wide) while traffic keeps flowing,
//   - identical plans from all three replicas for identical queries after
//     the promotion, and
//   - the trainer killed mid-soak with zero request failures: replicas
//     degrade to frozen-snapshot serving.
//
// Run under -race; every cross-component path (forwarding, snapshot load
// under the swap lock, ring routing, retry/failover) is concurrent here.
func TestThreeReplicaSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system soak")
	}
	// Trainer first, behind a handler indirection: replicas need its URL
	// before the Trainer value exists.
	type handlerBox struct{ h http.Handler }
	var trainerHandler atomic.Value
	trainerHandler.Store(handlerBox{http.NotFoundHandler()})
	trainerSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		trainerHandler.Load().(handlerBox).h.ServeHTTP(w, r)
	}))
	defer trainerSrv.Close()

	tsys, queries := testSystem(t, true)
	// KeepVersions is generous: retraining is fast under this load, and the
	// promotion target must still be published when the coordinator asks the
	// fleet to fetch it.
	trainer, err := NewTrainer(tsys, TrainerConfig{RetrainEvery: 8, KeepVersions: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer trainer.Close()
	trainerHandler.Store(handlerBox{trainer})
	v0 := trainer.NetVersion()

	// Three replicas: same open configuration, no bootstrap — their weights
	// come from the trainer's snapshot.
	rpc := proto.Client{Attempts: 2, Backoff: 5 * time.Millisecond, Timeout: 10 * time.Second}
	var servers []*serve.Server
	var urls []string
	for i := 0; i < 3; i++ {
		rsys, _ := testSystem(t, false)
		srv := serve.New(rsys, serve.Config{Replica: &serve.ReplicaConfig{
			TrainerURL: trainerSrv.URL,
			FlushEvery: 10 * time.Millisecond,
			FlushBatch: 8,
			Client:     rpc,
		}})
		if v, err := srv.SyncSnapshot(context.Background(), 0); err != nil || v != v0 {
			t.Fatalf("replica %d startup sync: version %d err %v, want %d", i, v, err, v0)
		}
		srv.Start()
		ts := httptest.NewServer(srv)
		defer ts.Close()
		servers = append(servers, srv)
		urls = append(urls, ts.URL)
	}

	fleet, err := neo.NewClient(neo.ClientConfig{Replicas: urls, RPC: rpc})
	if err != nil {
		t.Fatal(err)
	}

	// Sustained concurrent load through the fleet client. Failures are
	// transport/5xx errors — the soak demands zero across every phase.
	var failures atomic.Int64
	var requests atomic.Int64
	loadUntil := func(stop <-chan struct{}) *sync.WaitGroup {
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				ctx := context.Background()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					spec := specFor(queries[(g+i)%len(queries)])
					resp, err := fleet.Optimize(ctx, &spec)
					requests.Add(1)
					if err != nil {
						failures.Add(1)
						t.Errorf("optimize failed: %v", err)
						return
					}
					if _, err := fleet.Feedback(ctx, &spec, 10+float64(i%4), 0); err != nil {
						failures.Add(1)
						t.Errorf("feedback failed: %v", err)
						return
					}
					_ = resp
				}
			}(g)
		}
		return &wg
	}

	stopA := make(chan struct{})
	wgA := loadUntil(stopA)
	// Wait for forwarded experience to trigger a retrain and publish a new
	// snapshot version.
	waitFor(t, 90*time.Second, "trainer to retrain and publish", func() bool {
		st := trainer.Stats()
		return st.Retrains >= 1 && st.NetVersion > v0
	})
	target := trainer.NetVersion()

	// Mid-soak promotion: canary on replica 0 while load keeps flowing,
	// quality check against the pre-canary window, then fleet-wide.
	coord := NewCoordinator(RolloutConfig{
		Replicas:     urls,
		CanaryWait:   300 * time.Millisecond,
		MinFeedbacks: 2,
		Client:       rpc,
	})
	promoted, err := coord.Rollout(nil, target)
	if err != nil {
		t.Fatalf("mid-soak rollout of version %d: %v", target, err)
	}
	if !promoted {
		t.Fatalf("version %d rolled back under identical traffic: %+v", target, coord.Status())
	}
	close(stopA)
	wgA.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d request failures during the live-trainer soak", failures.Load())
	}

	// Every replica serves the promoted version, and identical queries get
	// identical plans from all three.
	for i, u := range urls {
		var st proto.ReplicaStats
		if err := rpc.GetJSON(context.Background(), u+"/stats", &st); err != nil {
			t.Fatal(err)
		}
		if st.NetVersion != target {
			t.Fatalf("replica %d at version %d after promotion, want %d", i, st.NetVersion, target)
		}
	}
	for _, q := range queries[:3] {
		plans := make(map[string]bool)
		for _, u := range urls {
			var resp proto.OptimizeResponse
			if code := postJSON(t, u+"/optimize", specFor(q), &resp); code != http.StatusOK {
				t.Fatalf("optimize on %s: status %d", u, code)
			}
			if resp.NetVersion != target {
				t.Fatalf("plan served from version %d, want %d", resp.NetVersion, target)
			}
			plans[resp.Plan] = true
		}
		if len(plans) != 1 {
			t.Fatalf("replicas disagree on query %s: %v", q.ID, plans)
		}
	}

	// Kill the trainer mid-soak: replicas must keep serving the frozen
	// snapshot with zero request failures.
	trainerSrv.Close()
	stopB := make(chan struct{})
	wgB := loadUntil(stopB)
	time.Sleep(300 * time.Millisecond) // several flush intervals of dead-trainer load
	close(stopB)
	wgB.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d request failures after the trainer died — replicas must degrade to frozen serving, not fail", failures.Load())
	}
	for i, u := range urls {
		var st proto.ReplicaStats
		if err := rpc.GetJSON(context.Background(), u+"/stats", &st); err != nil {
			t.Fatal(err)
		}
		if st.NetVersion != target {
			t.Fatalf("replica %d drifted to version %d with the trainer dead", i, st.NetVersion)
		}
	}
	if requests.Load() == 0 {
		t.Fatal("soak vacuous: no requests issued")
	}
	// Graceful close: the drain's delivery attempts fail fast against the
	// dead trainer and must not hang or error the close.
	for _, srv := range servers {
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
