package expert

import (
	"testing"

	"neo/internal/datagen"
	"neo/internal/engine"
	"neo/internal/plan"
	"neo/internal/query"
	"neo/internal/stats"
	"neo/internal/storage"
)

func setup(t testing.TB) (*storage.Database, *stats.Stats, map[string]*engine.Engine) {
	t.Helper()
	db, err := datagen.GenerateIMDB(datagen.Config{Scale: 0.3, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	st, err := stats.Build(db)
	if err != nil {
		t.Fatal(err)
	}
	engs := map[string]*engine.Engine{}
	for _, prof := range engine.Profiles() {
		engs[prof.Name] = engine.New(prof, db)
	}
	return db, st, engs
}

func loveQuery() *query.Query {
	return query.New("love",
		[]string{"title", "movie_keyword", "keyword"},
		[]query.JoinPredicate{
			{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
			{LeftTable: "movie_keyword", LeftColumn: "keyword_id", RightTable: "keyword", RightColumn: "id"},
		},
		[]query.Predicate{
			{Table: "keyword", Column: "keyword", Op: query.Eq, Value: storage.StringValue("love")},
		})
}

func fiveWayQuery() *query.Query {
	return query.New("five",
		[]string{"title", "movie_keyword", "keyword", "movie_info", "info_type"},
		[]query.JoinPredicate{
			{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
			{LeftTable: "movie_keyword", LeftColumn: "keyword_id", RightTable: "keyword", RightColumn: "id"},
			{LeftTable: "movie_info", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
			{LeftTable: "movie_info", LeftColumn: "info_type_id", RightTable: "info_type", RightColumn: "id"},
		},
		[]query.Predicate{
			{Table: "keyword", Column: "keyword", Op: query.Eq, Value: storage.StringValue("love")},
			{Table: "movie_info", Column: "info", Op: query.Eq, Value: storage.StringValue("romance")},
			{Table: "info_type", Column: "id", Op: query.Eq, Value: storage.IntValue(3)},
		})
}

func TestOptimizeProducesValidCompletePlan(t *testing.T) {
	db, st, engs := setup(t)
	cat := db.Catalog
	for name, eng := range engs {
		opt := NativeOptimizer(eng, st, cat)
		p, cost, err := opt.Optimize(loveQuery())
		if err != nil {
			t.Fatalf("%s: Optimize: %v", name, err)
		}
		if !p.IsComplete() {
			t.Errorf("%s: plan is not complete: %s", name, p)
		}
		if cost <= 0 {
			t.Errorf("%s: estimated cost should be positive", name)
		}
		if got := len(p.Roots[0].Tables()); got != 3 {
			t.Errorf("%s: plan covers %d tables, want 3", name, got)
		}
		// The plan must actually execute.
		if _, _, err := eng.Execute(p); err != nil {
			t.Errorf("%s: plan does not execute: %v", name, err)
		}
	}
}

func TestOptimizerBeatsRandomPlans(t *testing.T) {
	db, st, engs := setup(t)
	eng := engs["postgres"]
	opt := NativeOptimizer(eng, st, db.Catalog)
	q := fiveWayQuery()
	p, _, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	optLat, _, err := eng.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	rp := NewRandomPlanner(db.Catalog, 3)
	worse := 0
	const trials = 10
	for i := 0; i < trials; i++ {
		lat, _, err := eng.Execute(rp.Plan(q))
		if err != nil {
			t.Fatal(err)
		}
		if lat >= optLat {
			worse++
		}
	}
	if worse < trials*6/10 {
		t.Errorf("optimized plan (%.1fms) should beat most random plans, but only %d/%d were worse", optLat, worse, trials)
	}
}

func TestSQLiteNativeAvoidsHashJoins(t *testing.T) {
	db, st, engs := setup(t)
	opt := NativeOptimizer(engs["sqlite"], st, db.Catalog)
	p, _, err := opt.Optimize(loveQuery())
	if err != nil {
		t.Fatal(err)
	}
	p.Roots[0].Walk(func(n *plan.Node) {
		if !n.IsLeaf() && n.Join == plan.HashJoin {
			t.Errorf("sqlite native optimizer produced a hash join: %s", p)
		}
	})
}

func TestCommercialOptimizerAtLeastAsGoodAsPostgres(t *testing.T) {
	db, st, engs := setup(t)
	q := fiveWayQuery()
	// Both plans are executed on engine-m, mirroring the paper's setup of
	// running PostgreSQL's plan on the commercial engine.
	target := engs["engine-m"]
	pgOpt := NativeOptimizer(engs["postgres"], st, db.Catalog)
	mOpt := NativeOptimizer(target, st, db.Catalog)
	pgPlan, _, err := pgOpt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	mPlan, _, err := mOpt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	pgRes, err := target.Executor().Execute(pgPlan)
	if err != nil {
		t.Fatal(err)
	}
	mRes, err := target.Executor().Execute(mPlan)
	if err != nil {
		t.Fatal(err)
	}
	pgCost := target.CostResult(pgPlan.Roots[0], pgRes.Nodes)
	mCost := target.CostResult(mPlan.Roots[0], mRes.Nodes)
	if mCost > pgCost*1.10 {
		t.Errorf("commercial native plan (%.1f) should not be much worse than postgres plan (%.1f) on its own engine", mCost, pgCost)
	}
}

func TestHistogramEstimatorBasics(t *testing.T) {
	db, st, _ := setup(t)
	h := &HistogramEstimator{Stats: st}
	rows := h.ScanRows("title", nil)
	if rows != float64(db.Table("title").NumRows()) {
		t.Errorf("ScanRows with no predicates = %f", rows)
	}
	if h.BaseRows("title") != rows {
		t.Errorf("BaseRows should equal unfiltered ScanRows")
	}
	j := query.JoinPredicate{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"}
	join := h.JoinRows(1000, 500, []query.JoinPredicate{j})
	if join <= 0 {
		t.Errorf("JoinRows should be positive")
	}
	cross := h.JoinRows(1000, 500, nil)
	if cross != 500000 {
		t.Errorf("JoinRows without predicates should be the cross product, got %f", cross)
	}
	multi := h.JoinRows(1000, 500, []query.JoinPredicate{j, j})
	if multi > join {
		t.Errorf("extra join predicates should not increase the estimate (%f > %f)", multi, join)
	}
}

func TestCorrectedEstimatorBlends(t *testing.T) {
	db, st, engs := setup(t)
	_ = db
	h := &HistogramEstimator{Stats: st}
	preds := []query.Predicate{
		{Table: "movie_info", Column: "info", Op: query.Eq, Value: storage.StringValue("romance")},
		{Table: "movie_info", Column: "info_type_id", Op: query.Eq, Value: storage.IntValue(3)},
	}
	histRows := h.ScanRows("movie_info", preds)
	exactSel, err := engs["postgres"].Executor().Selectivity("movie_info", preds)
	if err != nil {
		t.Fatal(err)
	}
	exactRows := exactSel * h.BaseRows("movie_info")
	full := NewCorrectedEstimator(h, engs["postgres"].Executor(), 1.0)
	got := full.ScanRows("movie_info", preds)
	if diff(got, exactRows) > 0.05*exactRows+1 {
		t.Errorf("quality-1 estimator = %f, want ~exact %f", got, exactRows)
	}
	zero := NewCorrectedEstimator(h, engs["postgres"].Executor(), 0.0)
	if diff(zero.ScanRows("movie_info", preds), histRows) > 1e-6 {
		t.Errorf("quality-0 estimator should equal the histogram estimate")
	}
	// Cache should make the second call cheap and identical.
	if full.ScanRows("movie_info", preds) != got {
		t.Errorf("cached estimate should be identical")
	}
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestRandomPlannerProducesValidPlans(t *testing.T) {
	db, _, engs := setup(t)
	rp := NewRandomPlanner(db.Catalog, 5)
	q := fiveWayQuery()
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		p := rp.Plan(q)
		if !p.IsComplete() {
			t.Fatalf("random plan %d is not complete: %s", i, p)
		}
		if _, _, err := engs["postgres"].Execute(p); err != nil {
			t.Fatalf("random plan does not execute: %v", err)
		}
		seen[p.Signature()] = true
	}
	if len(seen) < 3 {
		t.Errorf("random planner should produce diverse plans, saw %d distinct", len(seen))
	}
}

func TestGreedyOptimizer(t *testing.T) {
	db, st, engs := setup(t)
	g := &GreedyOptimizer{Est: &HistogramEstimator{Stats: st}, Catalog: db.Catalog}
	p := g.Plan(fiveWayQuery())
	if !p.IsComplete() {
		t.Fatalf("greedy plan is not complete: %s", p)
	}
	if _, _, err := engs["postgres"].Execute(p); err != nil {
		t.Fatalf("greedy plan does not execute: %v", err)
	}
	// Greedy with a disconnected query falls back to cross products.
	disc := query.New("disc", []string{"keyword", "info_type"}, nil, nil)
	pd := g.Plan(disc)
	if !pd.IsComplete() {
		t.Errorf("greedy plan for disconnected query should still be complete")
	}
}

func TestOptimizeRejectsInvalidQuery(t *testing.T) {
	db, st, engs := setup(t)
	opt := NativeOptimizer(engs["postgres"], st, db.Catalog)
	bad := query.New("bad", []string{"not_a_table"}, nil, nil)
	if _, _, err := opt.Optimize(bad); err == nil {
		t.Errorf("expected validation error")
	}
}

func TestOptimizeSingleTable(t *testing.T) {
	db, st, engs := setup(t)
	opt := NativeOptimizer(engs["postgres"], st, db.Catalog)
	q := query.New("single", []string{"title"}, nil, []query.Predicate{
		{Table: "title", Column: "production_year", Op: query.Eq, Value: storage.IntValue(2001)},
	})
	p, cost, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsComplete() || len(p.Roots[0].Tables()) != 1 {
		t.Fatalf("bad single-table plan: %s", p)
	}
	// production_year is indexed and the predicate is an equality: the
	// optimizer should pick an index scan.
	if p.Roots[0].Scan != plan.IndexScan {
		t.Errorf("expected index scan for selective indexed predicate, got %s", p.Roots[0])
	}
	if cost <= 0 {
		t.Errorf("cost should be positive")
	}
}

func TestOptimizeDisconnectedQueryFallsBackToCrossProduct(t *testing.T) {
	db, st, engs := setup(t)
	opt := NewOptimizer(engs["postgres"], &HistogramEstimator{Stats: st}, db.Catalog, Config{})
	q := &query.Query{ID: "cross", Relations: []string{"info_type", "keyword"}}
	p, _, err := opt.Optimize(q)
	if err == nil {
		// Validation rejects disconnected queries, so construct one manually
		// bypassing Optimize's validation is not possible; accept either a
		// validation error or a successful cross-product plan.
		if !p.IsComplete() {
			t.Errorf("if accepted, the plan must be complete")
		}
	}
}

func TestNativeConfigShapes(t *testing.T) {
	cfg, q := NativeConfig("postgres")
	if cfg.Bushy || q != 0 {
		t.Errorf("postgres should be left-deep with histogram stats")
	}
	cfg, q = NativeConfig("engine-m")
	if !cfg.Bushy || q <= 0 {
		t.Errorf("engine-m should be bushy with corrected stats")
	}
	cfg, _ = NativeConfig("sqlite")
	for _, op := range cfg.JoinOps {
		if op == plan.HashJoin {
			t.Errorf("sqlite config should not include hash joins")
		}
	}
	cfg, _ = NativeConfig("unknown-engine")
	if cfg.Bushy {
		t.Errorf("unknown engines default to the postgres configuration")
	}
}

func BenchmarkOptimizeFiveWay(b *testing.B) {
	db, err := datagen.GenerateIMDB(datagen.Config{Scale: 0.3, Seed: 31})
	if err != nil {
		b.Fatal(err)
	}
	st, err := stats.Build(db)
	if err != nil {
		b.Fatal(err)
	}
	eng := engine.New(engine.PostgreSQLProfile(), db)
	opt := NativeOptimizer(eng, st, db.Catalog)
	q := fiveWayQuery()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := opt.Optimize(q); err != nil {
			b.Fatal(err)
		}
	}
}
