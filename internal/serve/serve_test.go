package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"neo/pkg/neo"
)

// testSystem assembles and bootstraps a small system (1-hot encoding: no
// embedding training, so the integration test stays fast under -race). It
// serves at float32 precision — the neo-serve default — so the whole
// lifecycle (optimize, retrain swap, checkpoint, warm restart) runs through
// the packed inference kernels.
func testSystem(t testing.TB) (*neo.System, []*neo.Query) {
	t.Helper()
	sys, err := neo.Open(neo.Config{
		Dataset:          "imdb",
		Engine:           "postgres",
		Encoding:         neo.OneHot,
		Scale:            0.15,
		Seed:             7,
		SearchExpansions: 24,
		Episodes:         1,
		ScorePrecision:   "float32",
		ValueNet: &neo.ValueNetConfig{
			QueryLayers:  []int{16, 8},
			TreeChannels: []int{8, 8},
			HeadLayers:   []int{8},
			LearningRate: 2e-3,
			UseLayerNorm: true,
			Seed:         3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := sys.GenerateWorkload(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Bootstrap(wl.Queries[:4]); err != nil {
		t.Fatal(err)
	}
	return sys, wl.Queries
}

// specFor converts a workload query into the JSON representation the daemon
// accepts.
func specFor(q *neo.Query) QuerySpec {
	spec := QuerySpec{ID: q.ID, Relations: q.Relations}
	for _, j := range q.Joins {
		spec.Joins = append(spec.Joins, JoinSpec{
			Left:  j.LeftTable + "." + j.LeftColumn,
			Right: j.RightTable + "." + j.RightColumn,
		})
	}
	for _, p := range q.Predicates {
		var raw json.RawMessage
		if p.Value.Kind == neo.IntValue(0).Kind {
			raw, _ = json.Marshal(p.Value.Int)
		} else {
			raw, _ = json.Marshal(p.Value.Str)
		}
		spec.Predicates = append(spec.Predicates, PredicateSpec{
			Column: p.Table + "." + p.Column,
			Op:     p.Op.String(),
			Value:  raw,
		})
	}
	return spec
}

func postJSON(t testing.TB, url string, body any, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func getStats(t testing.TB, base string) Stats {
	t.Helper()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func optimizePlans(t testing.TB, base string, queries []*neo.Query) map[string]string {
	t.Helper()
	plans := make(map[string]string, len(queries))
	for _, q := range queries {
		var resp OptimizeResponse
		if code := postJSON(t, base+"/optimize", specFor(q), &resp); code != http.StatusOK {
			t.Fatalf("optimize %s: status %d", q.ID, code)
		}
		if resp.Plan == "" {
			t.Fatalf("optimize %s: empty plan", q.ID)
		}
		plans[q.ID] = resp.Plan
	}
	return plans
}

// TestServeLifecycle drives the whole daemon in process: concurrent
// /optimize and /feedback clients, a feedback-triggered retraining round
// whose snapshot swap invalidates the plan cache, a graceful-shutdown
// checkpoint, and a warm restart that serves bit-identical plans. Run under
// -race in CI.
func TestServeLifecycle(t *testing.T) {
	sys, queries := testSystem(t)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "serve.ckpt")

	const retrainEvery = 4
	srv := New(sys, Config{CheckpointPath: ckpt, RetrainEvery: retrainEvery})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Health + initial serving state.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	initial := getStats(t, ts.URL)
	versionBefore := initial.NetVersion
	if initial.Snapshot.Precision != "float32" || initial.Snapshot.PanelBytes == 0 {
		t.Fatalf("stats snapshot section not reporting float32 serving: %+v", initial.Snapshot)
	}

	// Concurrent optimize + feedback clients.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, q := range queries[:4] {
				var opt OptimizeResponse
				if code := postJSON(t, ts.URL+"/optimize", specFor(q), &opt); code != http.StatusOK {
					t.Errorf("worker %d optimize: status %d", w, code)
					return
				}
				var fb FeedbackResponse
				req := FeedbackRequest{Query: specFor(q), LatencyMS: float64(20 + 7*w + i)}
				if code := postJSON(t, ts.URL+"/feedback", req, &fb); code != http.StatusOK {
					t.Errorf("worker %d feedback: status %d", w, code)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// 16 feedbacks at retrain-every=4 must have triggered at least one
	// background round; wait for it to land.
	deadline := time.Now().Add(30 * time.Second)
	var st Stats
	for {
		st = getStats(t, ts.URL)
		if st.Retrains >= 1 && !st.Retraining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no retraining round completed: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.NetVersion <= versionBefore {
		t.Fatalf("net version %d did not advance past %d after retraining", st.NetVersion, versionBefore)
	}
	if st.Feedbacks != 16 || st.Experience <= 4 {
		t.Fatalf("unexpected serving counters: %+v", st)
	}

	// The snapshot swap must invalidate the plan cache: the next optimize
	// re-keys the cache to the new network version.
	finalPlans := optimizePlans(t, ts.URL, queries)
	st = getStats(t, ts.URL)
	if st.PlanCache.Version != st.NetVersion {
		t.Fatalf("plan cache version %d still behind net version %d after swap",
			st.PlanCache.Version, st.NetVersion)
	}
	if st.PlanCache.Size == 0 {
		t.Fatal("plan cache empty after re-optimizing")
	}

	// Graceful shutdown writes the final checkpoint; Close is idempotent.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("shutdown checkpoint missing: %v", err)
	}

	// Warm restart: a fresh system restored from the checkpoint serves
	// bit-identical plans for every query.
	sys2, err := neo.Open(sys.Config)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys2.LoadCheckpointFile(ckpt); err != nil {
		t.Fatal(err)
	}
	srv2 := New(sys2, Config{CheckpointPath: ckpt, RetrainEvery: retrainEvery})
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	defer srv2.Close()
	if got, want := getStats(t, ts2.URL).NetVersion, st.NetVersion; got != want {
		t.Fatalf("warm restart at net version %d, want %d", got, want)
	}
	restartPlans := optimizePlans(t, ts2.URL, queries)
	for id, want := range finalPlans {
		if got := restartPlans[id]; got != want {
			t.Fatalf("query %s: warm restart served a different plan:\n  before: %s\n  after:  %s", id, want, got)
		}
	}
}

// TestServeStaleFeedbackAndExperienceCap pins the two feedback safety rails:
// feedback carrying a superseded net_version is rejected with 409 (its
// latency belongs to a plan that is no longer served), and the experience
// pool is trimmed to the configured cap.
func TestServeStaleFeedbackAndExperienceCap(t *testing.T) {
	sys, queries := testSystem(t)
	cap := sys.Neo.Experience.Len() + 3
	srv := New(sys, Config{MaxExperience: cap})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var opt OptimizeResponse
	if code := postJSON(t, ts.URL+"/optimize", specFor(queries[0]), &opt); code != http.StatusOK {
		t.Fatalf("optimize: status %d", code)
	}

	// Correct version: accepted.
	req := FeedbackRequest{Query: specFor(queries[0]), LatencyMS: 12, NetVersion: opt.NetVersion}
	if code := postJSON(t, ts.URL+"/feedback", req, nil); code != http.StatusOK {
		t.Fatalf("matching net_version: status %d", code)
	}
	// Superseded version: rejected with 409, experience unchanged.
	before := sys.Neo.Experience.Len()
	req.NetVersion = opt.NetVersion - 1
	if code := postJSON(t, ts.URL+"/feedback", req, nil); code != http.StatusConflict {
		t.Fatalf("stale net_version: status %d, want 409", code)
	}
	if got := sys.Neo.Experience.Len(); got != before {
		t.Fatalf("stale feedback grew the experience: %d -> %d", before, got)
	}

	// The pool never exceeds the cap no matter how many feedbacks arrive.
	for i := 0; i < 8; i++ {
		req := FeedbackRequest{Query: specFor(queries[i%3]), LatencyMS: float64(10 + i)}
		if code := postJSON(t, ts.URL+"/feedback", req, nil); code != http.StatusOK {
			t.Fatalf("feedback %d: status %d", i, code)
		}
		if got := sys.Neo.Experience.Len(); got > cap {
			t.Fatalf("experience %d exceeds cap %d", got, cap)
		}
	}
	if got := sys.Neo.Experience.Len(); got != cap {
		t.Fatalf("experience = %d after trimming, want cap %d", got, cap)
	}
}

func TestServeRejectsBadRequests(t *testing.T) {
	sys, queries := testSystem(t)
	srv := New(sys, Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/optimize", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", resp.StatusCode)
	}

	bad := []QuerySpec{
		{Relations: []string{"no_such_table"}},
		{Relations: []string{"title"}, Predicates: []PredicateSpec{{Column: "missing-dot", Op: "=", Value: json.RawMessage(`1`)}}},
		{Relations: []string{"title"}, Predicates: []PredicateSpec{{Column: "title.kind", Op: "~~", Value: json.RawMessage(`"x"`)}}},
		{Relations: []string{"title"}, Predicates: []PredicateSpec{{Column: "title.kind", Op: "=", Value: json.RawMessage(`[1,2]`)}}},
	}
	for i, spec := range bad {
		if code := postJSON(t, ts.URL+"/optimize", spec, nil); code != http.StatusBadRequest {
			t.Errorf("bad spec %d: status %d, want 400", i, code)
		}
	}

	// Feedback with a non-positive latency.
	req := FeedbackRequest{Query: specFor(queries[0]), LatencyMS: 0}
	if code := postJSON(t, ts.URL+"/feedback", req, nil); code != http.StatusBadRequest {
		t.Errorf("zero latency: status %d, want 400", code)
	}

	// Wrong method.
	resp, err = http.Get(ts.URL + "/optimize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("GET /optimize should not be served")
	}
}

// fusedSystem is testSystem with the cross-request inference scheduler
// enabled, as neo-serve runs in production.
func fusedSystem(t testing.TB) (*neo.System, []*neo.Query) {
	t.Helper()
	sys, err := neo.Open(neo.Config{
		Dataset:          "imdb",
		Engine:           "postgres",
		Encoding:         neo.OneHot,
		Scale:            0.15,
		Seed:             7,
		SearchExpansions: 24,
		Episodes:         1,
		FuseScoring:      true,
		ValueNet: &neo.ValueNetConfig{
			QueryLayers:  []int{16, 8},
			TreeChannels: []int{8, 8},
			HeadLayers:   []int{8},
			LearningRate: 2e-3,
			UseLayerNorm: true,
			Seed:         3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := sys.GenerateWorkload(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Bootstrap(wl.Queries[:4]); err != nil {
		t.Fatal(err)
	}
	return sys, wl.Queries
}

// TestServeFusedScoring drives concurrent /optimize requests for distinct
// query structures (distinct predicate literals defeat the plan cache, so
// every request really searches) through one shared scheduler and checks
// that /stats reports the fusion: shared passes happened, and the counters
// are internally consistent.
func TestServeFusedScoring(t *testing.T) {
	sys, _ := fusedSystem(t)
	srv := New(sys, Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	spec := func(year int) QuerySpec {
		return QuerySpec{
			Relations: []string{"title", "movie_keyword"},
			Joins:     []JoinSpec{{Left: "movie_keyword.movie_id", Right: "title.id"}},
			Predicates: []PredicateSpec{
				{Column: "title.production_year", Op: ">=", Value: json.RawMessage(fmt.Sprintf("%d", 1900+year))},
			},
		}
	}

	// Fusion needs submissions to overlap in time; retry a few rounds so the
	// assertion is robust on slow single-core CI rather than timing-lucky.
	for round := 0; round < 10; round++ {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				var opt OptimizeResponse
				if code := postJSON(t, ts.URL+"/optimize", spec(round*8+g), &opt); code != http.StatusOK {
					t.Errorf("optimize: status %d", code)
				}
			}(g)
		}
		wg.Wait()
		if srv.snapshotStats().Fusion.FusedBatches > 0 {
			break
		}
	}

	st := getStats(t, ts.URL)
	if !st.Fusion.Enabled {
		t.Fatal("fusion reported disabled on a FuseScoring system")
	}
	if st.Fusion.Submissions == 0 || st.Fusion.Batches == 0 {
		t.Fatalf("no scoring reached the scheduler: %+v", st.Fusion)
	}
	if st.Fusion.FusedBatches < 1 {
		t.Errorf("80 concurrent searches produced no fused pass: %+v", st.Fusion)
	}
	if st.Fusion.Batches > st.Fusion.Submissions || st.Fusion.Rows < st.Fusion.Submissions {
		t.Errorf("fusion counters inconsistent: %+v", st.Fusion)
	}
	if st.Fusion.AvgFusedSize < 1 {
		t.Errorf("avg fused size %v < 1 with nonzero batches", st.Fusion.AvgFusedSize)
	}
}
