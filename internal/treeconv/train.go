// Batched tree-convolution training. batch.go flattens forests into index
// arrays for inference; the routines here extend the same layout to training:
// ForwardBatchTape retains every layer's pre-activation matrix so
// BackwardBatch can propagate a flat gradient matrix through the whole stack
// — and PoolBatchArgmax / PoolBackwardBatch replace the per-tree dynamic
// pooling with a single flat pass that records, per (sample, channel), which
// node supplied the maximum.
//
// Bit-parity contract: nodes are visited in the flattened order BatchBuilder
// assigns (forests in sample order, trees in forest order, nodes in
// pre-order), which is exactly the order the per-tree recursion of
// Layer.backwardNode visits them, so every parameter element accumulates its
// gradient contributions in the same floating-point order as the per-sample
// path.
package treeconv

import (
	"math"

	"neo/internal/nn"
)

// ShadowGrad returns a Layer sharing l's filter weights with private, zeroed
// gradient buffers (see nn.Param.ShadowGrad).
func (l *Layer) ShadowGrad() *Layer {
	return &Layer{
		InChannels:  l.InChannels,
		OutChannels: l.OutChannels,
		EP:          l.EP.ShadowGrad(),
		EL:          l.EL.ShadowGrad(),
		ER:          l.ER.ShadowGrad(),
		Bias:        l.Bias.ShadowGrad(),
		Act:         l.Act,
	}
}

// ShadowGrad returns a Stack sharing s's weights with private gradient
// buffers.
func (s *Stack) ShadowGrad() *Stack {
	out := &Stack{}
	for _, l := range s.Layers {
		out.Layers = append(out.Layers, l.ShadowGrad())
	}
	return out
}

// StackBatchTape records one batched forward pass through the stack for
// backpropagation: the input batch plus, per layer, the pre-activation
// matrix and the activated output batch. All float storage is drawn from the
// arena passed to ForwardBatchTape.
type StackBatchTape struct {
	in   *Batch
	pre  [][]float64 // per layer: N×OutChannels pre-activation values
	outs []*Batch    // per layer: activated outputs
}

// Output returns the final convolved batch.
func (t *StackBatchTape) Output() *Batch { return t.outs[len(t.outs)-1] }

// ForwardBatchTape runs every layer over the flattened batch, recording a
// tape for BackwardBatch. Unlike the fused inference kernels of
// ForwardBatch, pre-activation values are materialised per layer; per node
// the convolution performs the same operations in the same order as
// Layer.convolve, so outputs are bit-identical to the per-tree Forward.
func (s *Stack) ForwardBatchTape(in *Batch, a *nn.Arena) *StackBatchTape {
	maxIn := 0
	for _, l := range s.Layers {
		if l.InChannels > maxIn {
			maxIn = l.InChannels
		}
	}
	zeros := a.Alloc(maxIn)
	for i := range zeros {
		zeros[i] = 0
	}
	t := &StackBatchTape{in: in}
	cur := in
	for _, l := range s.Layers {
		pre := a.Alloc(in.N * l.OutChannels)
		l.convBatchPre(cur, pre, zeros)
		out := &Batch{
			Channels: l.OutChannels,
			N:        cur.N,
			Samples:  cur.Samples,
			Left:     cur.Left,
			Right:    cur.Right,
			Sample:   cur.Sample,
			Data:     a.Alloc(cur.N * l.OutChannels),
		}
		alpha := l.Act.Alpha
		for i, v := range pre {
			if v >= 0 {
				out.Data[i] = v
			} else {
				out.Data[i] = alpha * v
			}
		}
		t.pre = append(t.pre, pre)
		t.outs = append(t.outs, out)
		cur = out
	}
	return t
}

// convBatchPre convolves the filterbank over every node of in, writing the
// pre-activation values into pre. Like the inference kernels, childless
// nodes skip the child dot products entirely (bit-identical up to the sign
// of zero) and join nodes run a 4-way-unrolled kernel whose per-channel
// operation order matches Layer.convolve exactly; one-child nodes fall back
// to the padded generic kernel.
func (l *Layer) convBatchPre(in *Batch, pre, zeros []float64) {
	ic := l.InChannels
	for n := 0; n < in.N; n++ {
		x := in.Row(n)
		y := pre[n*l.OutChannels : (n+1)*l.OutChannels]
		li, ri := in.Left[n], in.Right[n]
		switch {
		case li < 0 && ri < 0:
			l.convLeafPre(x, y)
		case li >= 0 && ri >= 0:
			l.convBothPre(x, in.Row(li), in.Row(ri), y)
		default:
			xl, xr := zeros[:ic], zeros[:ic]
			if li >= 0 {
				xl = in.Row(li)
			}
			if ri >= 0 {
				xr = in.Row(ri)
			}
			for o := 0; o < l.OutChannels; o++ {
				sum := l.Bias.Value[o]
				ep := l.EP.Value[o*ic : o*ic+ic]
				el := l.EL.Value[o*ic : o*ic+ic]
				er := l.ER.Value[o*ic : o*ic+ic]
				for i := 0; i < ic; i++ {
					sum += ep[i] * x[i]
					sum += el[i] * xl[i]
					sum += er[i] * xr[i]
				}
				y[o] = sum
			}
		}
	}
}

// convBothPre is convBoth without the fused activation: four independent
// accumulator chains per pass, per-channel operation order identical to
// Layer.convolve.
func (l *Layer) convBothPre(x, xl, xr, y []float64) {
	ic := l.InChannels
	o := 0
	for ; o+4 <= l.OutChannels; o += 4 {
		ep0 := l.EP.Value[o*ic : o*ic+ic]
		ep1 := l.EP.Value[(o+1)*ic : (o+1)*ic+ic]
		ep2 := l.EP.Value[(o+2)*ic : (o+2)*ic+ic]
		ep3 := l.EP.Value[(o+3)*ic : (o+3)*ic+ic]
		el0 := l.EL.Value[o*ic : o*ic+ic]
		el1 := l.EL.Value[(o+1)*ic : (o+1)*ic+ic]
		el2 := l.EL.Value[(o+2)*ic : (o+2)*ic+ic]
		el3 := l.EL.Value[(o+3)*ic : (o+3)*ic+ic]
		er0 := l.ER.Value[o*ic : o*ic+ic]
		er1 := l.ER.Value[(o+1)*ic : (o+1)*ic+ic]
		er2 := l.ER.Value[(o+2)*ic : (o+2)*ic+ic]
		er3 := l.ER.Value[(o+3)*ic : (o+3)*ic+ic]
		s0 := l.Bias.Value[o]
		s1 := l.Bias.Value[o+1]
		s2 := l.Bias.Value[o+2]
		s3 := l.Bias.Value[o+3]
		for i := 0; i < ic; i++ {
			xv, lv, rv := x[i], xl[i], xr[i]
			s0 += ep0[i] * xv
			s0 += el0[i] * lv
			s0 += er0[i] * rv
			s1 += ep1[i] * xv
			s1 += el1[i] * lv
			s1 += er1[i] * rv
			s2 += ep2[i] * xv
			s2 += el2[i] * lv
			s2 += er2[i] * rv
			s3 += ep3[i] * xv
			s3 += el3[i] * lv
			s3 += er3[i] * rv
		}
		y[o] = s0
		y[o+1] = s1
		y[o+2] = s2
		y[o+3] = s3
	}
	for ; o < l.OutChannels; o++ {
		sum := l.Bias.Value[o]
		ep := l.EP.Value[o*ic : o*ic+ic]
		el := l.EL.Value[o*ic : o*ic+ic]
		er := l.ER.Value[o*ic : o*ic+ic]
		for i := 0; i < ic; i++ {
			sum += ep[i] * x[i]
			sum += el[i] * xl[i]
			sum += er[i] * xr[i]
		}
		y[o] = sum
	}
}

// convLeafPre is convLeaf without the fused activation.
func (l *Layer) convLeafPre(x, y []float64) {
	ic := l.InChannels
	o := 0
	for ; o+4 <= l.OutChannels; o += 4 {
		ep0 := l.EP.Value[o*ic : o*ic+ic]
		ep1 := l.EP.Value[(o+1)*ic : (o+1)*ic+ic]
		ep2 := l.EP.Value[(o+2)*ic : (o+2)*ic+ic]
		ep3 := l.EP.Value[(o+3)*ic : (o+3)*ic+ic]
		s0 := l.Bias.Value[o]
		s1 := l.Bias.Value[o+1]
		s2 := l.Bias.Value[o+2]
		s3 := l.Bias.Value[o+3]
		for i, xv := range x {
			s0 += ep0[i] * xv
			s1 += ep1[i] * xv
			s2 += ep2[i] * xv
			s3 += ep3[i] * xv
		}
		y[o] = s0
		y[o+1] = s1
		y[o+2] = s2
		y[o+3] = s3
	}
	for ; o < l.OutChannels; o++ {
		sum := l.Bias.Value[o]
		ep := l.EP.Value[o*ic : o*ic+ic]
		for i, xv := range x {
			sum += ep[i] * xv
		}
		y[o] = sum
	}
}

// BackwardBatch propagates a flat N×lastChannels gradient matrix through the
// taped forward pass, accumulating filter gradients, and returns the
// N×inChannels gradient with respect to the input batch's node vectors.
func (s *Stack) BackwardBatch(t *StackBatchTape, gradOut []float64, a *nn.Arena) []float64 {
	grad := gradOut
	for li := len(s.Layers) - 1; li >= 0; li-- {
		l := s.Layers[li]
		in := t.in
		if li > 0 {
			in = t.outs[li-1]
		}
		pre := t.pre[li]
		// Activation backward (elementwise over the whole batch).
		gradPre := a.Alloc(len(pre))
		alpha := l.Act.Alpha
		for i, v := range pre {
			if v >= 0 {
				gradPre[i] = grad[i]
			} else {
				gradPre[i] = alpha * grad[i]
			}
		}
		gradIn := a.Alloc(in.N * l.InChannels)
		for i := range gradIn {
			gradIn[i] = 0
		}
		l.backwardBatchNodes(in, gradPre, gradIn)
		grad = gradIn
	}
	return grad
}

// backwardBatchNodes is the flat analogue of backwardNode: one pass over the
// batch's nodes in flattened pre-order, accumulating filter gradients and
// scattering input gradients to each node and its children. Statement order
// inside the inner loops mirrors backwardNode exactly; like the forward
// kernels, childless nodes get a specialised loop that skips the g·0 child
// terms (bit-identical up to the sign of zero) and join nodes a branch-free
// one, with one-child nodes falling back to a padded generic kernel.
func (l *Layer) backwardBatchNodes(in *Batch, gradPre, gradIn []float64) {
	ic := l.InChannels
	oc := l.OutChannels
	for n := 0; n < in.N; n++ {
		x := in.Row(n)
		li, ri := in.Left[n], in.Right[n]
		gin := gradIn[n*ic : (n+1)*ic]
		gp := gradPre[n*oc : (n+1)*oc]
		switch {
		case li < 0 && ri < 0:
			for o := 0; o < oc; o++ {
				g := gp[o]
				if g == 0 {
					continue
				}
				l.Bias.Grad[o] += g
				ep := l.EP.Value[o*ic : (o+1)*ic]
				epg := l.EP.Grad[o*ic : (o+1)*ic]
				for i := 0; i < ic; i++ {
					epg[i] += g * x[i]
					gin[i] += g * ep[i]
				}
			}
		case li >= 0 && ri >= 0:
			xl, xr := in.Row(li), in.Row(ri)
			ginL := gradIn[li*ic : (li+1)*ic]
			ginR := gradIn[ri*ic : (ri+1)*ic]
			for o := 0; o < oc; o++ {
				g := gp[o]
				if g == 0 {
					continue
				}
				l.Bias.Grad[o] += g
				ep := l.EP.Value[o*ic : (o+1)*ic]
				el := l.EL.Value[o*ic : (o+1)*ic]
				er := l.ER.Value[o*ic : (o+1)*ic]
				epg := l.EP.Grad[o*ic : (o+1)*ic]
				elg := l.EL.Grad[o*ic : (o+1)*ic]
				erg := l.ER.Grad[o*ic : (o+1)*ic]
				for i := 0; i < ic; i++ {
					epg[i] += g * x[i]
					elg[i] += g * xl[i]
					erg[i] += g * xr[i]
					gin[i] += g * ep[i]
					ginL[i] += g * el[i]
					ginR[i] += g * er[i]
				}
			}
		default:
			var xl, xr, ginL, ginR []float64
			if li >= 0 {
				xl = in.Row(li)
				ginL = gradIn[li*ic : (li+1)*ic]
			}
			if ri >= 0 {
				xr = in.Row(ri)
				ginR = gradIn[ri*ic : (ri+1)*ic]
			}
			for o := 0; o < oc; o++ {
				g := gp[o]
				if g == 0 {
					continue
				}
				l.Bias.Grad[o] += g
				ep := l.EP.Value[o*ic : (o+1)*ic]
				el := l.EL.Value[o*ic : (o+1)*ic]
				er := l.ER.Value[o*ic : (o+1)*ic]
				epg := l.EP.Grad[o*ic : (o+1)*ic]
				elg := l.EL.Grad[o*ic : (o+1)*ic]
				erg := l.ER.Grad[o*ic : (o+1)*ic]
				for i := 0; i < ic; i++ {
					epg[i] += g * x[i]
					if xl != nil {
						elg[i] += g * xl[i]
					}
					if xr != nil {
						erg[i] += g * xr[i]
					}
					gin[i] += g * ep[i]
					if ginL != nil {
						ginL[i] += g * el[i]
					}
					if ginR != nil {
						ginR[i] += g * er[i]
					}
				}
			}
		}
	}
}

// PoolBatchArgmax is PoolBatch plus an argmax record: argmax[s*Channels+c]
// is the index of the node that supplied sample s's maximum for channel c
// (-1 for empty samples). Ties keep the first node in flattened order, which
// matches the per-tree DynamicPool argmax combined with the cross-tree
// strict-greater ownership comparison of the per-sample forward pass. The
// argmax slice is (re)used from argmaxBuf when it has capacity.
func PoolBatchArgmax(b *Batch, a *nn.Arena, argmaxBuf []int) (pooled []float64, argmax []int) {
	dim := b.Channels
	pooled = a.Alloc(b.Samples * dim)
	if cap(argmaxBuf) < b.Samples*dim {
		argmax = make([]int, b.Samples*dim)
	} else {
		argmax = argmaxBuf[:b.Samples*dim]
	}
	for i := range pooled {
		pooled[i] = math.Inf(-1)
		argmax[i] = -1
	}
	for n := 0; n < b.N; n++ {
		base := b.Sample[n] * dim
		row := pooled[base : base+dim]
		for i, v := range b.Row(n) {
			if v > row[i] {
				row[i] = v
				argmax[base+i] = n
			}
		}
	}
	for i := range pooled {
		if math.IsInf(pooled[i], -1) {
			pooled[i] = 0
		}
	}
	return pooled, argmax
}

// PoolBackwardBatch scatters a Samples×Channels pooled-gradient matrix back
// to the node level: every (sample, channel) gradient lands on the argmax
// node recorded by PoolBatchArgmax, all other node gradients are zero.
func PoolBackwardBatch(b *Batch, argmax []int, gradPooled []float64, a *nn.Arena) []float64 {
	dim := b.Channels
	gradNodes := a.Alloc(b.N * dim)
	for i := range gradNodes {
		gradNodes[i] = 0
	}
	for s := 0; s < b.Samples; s++ {
		for c := 0; c < dim; c++ {
			n := argmax[s*dim+c]
			if n < 0 {
				continue
			}
			gradNodes[n*dim+c] += gradPooled[s*dim+c]
		}
	}
	return gradNodes
}
