package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"neo/pkg/neo"
)

// routedSystem is testSystem with auto routing: pattern-shaped queries take
// the statistics-free greedy planner, hard shapes keep the full search.
func routedSystem(t testing.TB) *neo.System {
	t.Helper()
	sys, err := neo.Open(neo.Config{
		Dataset:          "imdb",
		Engine:           "postgres",
		Encoding:         neo.OneHot,
		Scale:            0.15,
		Seed:             7,
		SearchExpansions: 24,
		Episodes:         1,
		Routing:          "auto",
		ValueNet: &neo.ValueNetConfig{
			QueryLayers:  []int{16, 8},
			TreeChannels: []int{8, 8},
			HeadLayers:   []int{8},
			LearningRate: 2e-3,
			UseLayerNorm: true,
			Seed:         3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := sys.GenerateWorkload(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Bootstrap(wl.Queries[:4]); err != nil {
		t.Fatal(err)
	}
	return sys
}

// chainSpec builds a title—movie_keyword—keyword chain whose production_year
// literal varies per call: distinct literals mean distinct plan-cache
// signatures, so every request reaches the router instead of the cache.
func chainSpec(id string, year int64) QuerySpec {
	q := neo.NewQuery(id,
		[]string{"title", "movie_keyword", "keyword"},
		[]neo.JoinPredicate{
			{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
			{LeftTable: "movie_keyword", LeftColumn: "keyword_id", RightTable: "keyword", RightColumn: "id"},
		},
		[]neo.Predicate{
			{Table: "title", Column: "production_year", Op: neo.Eq, Value: neo.IntValue(year)},
		})
	return specFor(q)
}

// TestServeRoutedAuto drives a routed daemon end to end (run under -race in
// CI): concurrent /optimize clients send pattern-shaped queries the auto
// heuristic routes to the fast path plus a predicate-free chain it keeps on
// the full search, /feedback closes the observed-latency loop, and /stats
// must report the router's counters for both outcomes.
func TestServeRoutedAuto(t *testing.T) {
	sys := routedSystem(t)
	srv := New(sys, Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const clients = 4
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				spec := chainSpec(fmt.Sprintf("routed-%d-%d", c, i), int64(1980+10*c+i))
				var resp OptimizeResponse
				if code := postJSON(t, ts.URL+"/optimize", spec, &resp); code != http.StatusOK {
					t.Errorf("optimize %s: status %d", spec.ID, code)
					return
				}
				if resp.Plan == "" {
					t.Errorf("optimize %s: empty plan", spec.ID)
					return
				}
				fb := FeedbackRequest{Query: spec, LatencyMS: 5, NetVersion: resp.NetVersion}
				if code := postJSON(t, ts.URL+"/feedback", fb, nil); code != http.StatusOK {
					t.Errorf("feedback %s: status %d", spec.ID, code)
				}
			}
		}(c)
	}
	wg.Wait()

	// A chain with no predicate gives the greedy ordering nothing to order
	// by; the heuristic must keep it on the full search.
	nosel := specFor(neo.NewQuery("routed-nosel",
		[]string{"title", "movie_keyword", "keyword"},
		[]neo.JoinPredicate{
			{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
			{LeftTable: "movie_keyword", LeftColumn: "keyword_id", RightTable: "keyword", RightColumn: "id"},
		}, nil))
	var resp OptimizeResponse
	if code := postJSON(t, ts.URL+"/optimize", nosel, &resp); code != http.StatusOK {
		t.Fatalf("optimize %s: status %d", nosel.ID, code)
	}

	st := getStats(t, ts.URL)
	if st.Routing == nil {
		t.Fatalf("/stats omitted the routing section for an auto-routed system")
	}
	if st.Routing.Mode != "auto" {
		t.Errorf("routing mode = %q, want auto", st.Routing.Mode)
	}
	if st.Routing.Fastpath < clients*3 {
		t.Errorf("fastpath decisions = %d, want >= %d (every distinct chain literal is a cache miss)",
			st.Routing.Fastpath, clients*3)
	}
	if st.Routing.Full == 0 {
		t.Errorf("predicate-free chain should have produced a full-search decision: %+v", st.Routing)
	}
	if st.Routing.FastpathP50US <= 0 {
		t.Errorf("fast-path planning latency percentiles missing: %+v", st.Routing)
	}
	if len(st.Routing.Classes) < 2 {
		t.Errorf("expected at least two routing classes (sel and nosel chains), got %+v", st.Routing.Classes)
	}
}
