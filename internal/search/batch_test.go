package search

import (
	"testing"

	"neo/internal/datagen"
	"neo/internal/plan"
)

// recordingBatchScorer is a batch-native scorer that records the size of
// every ScoreBatch call, so tests can assert that the search really scores
// all children of an expansion in one call.
type recordingBatchScorer struct {
	batches []int
}

func (r *recordingBatchScorer) ScoreBatch(ps []*plan.Plan) []float64 {
	r.batches = append(r.batches, len(ps))
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = structuralScorer(p)
	}
	return out
}

// TestBestFirstBatchedMatchesSequential is the scorer-path parity test: a
// batch-native scorer and a per-plan ScorerFunc over the same cost model must
// drive BestFirst to the identical plan.
func TestBestFirstBatchedMatchesSequential(t *testing.T) {
	cat := datagen.IMDBCatalog()
	q := fiveWayQuery()

	seq, err := BestFirst(q, ScorerFunc(structuralScorer), DefaultOptions(cat))
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingBatchScorer{}
	bat, err := BestFirst(q, rec, DefaultOptions(cat))
	if err != nil {
		t.Fatal(err)
	}

	if seq.Plan.Signature() != bat.Plan.Signature() {
		t.Errorf("plan signatures differ:\nsequential: %s\nbatched:    %s",
			seq.Plan.Signature(), bat.Plan.Signature())
	}
	if seq.Score != bat.Score {
		t.Errorf("scores differ: sequential %v, batched %v", seq.Score, bat.Score)
	}
	if seq.Expansions != bat.Expansions || seq.Evaluations != bat.Evaluations {
		t.Errorf("search effort differs: sequential (%d exp, %d evals), batched (%d exp, %d evals)",
			seq.Expansions, seq.Evaluations, bat.Expansions, bat.Evaluations)
	}

	// The hot path must batch: every multi-child expansion arrives as one
	// ScoreBatch call, so calls of size > 1 dominate.
	multi := 0
	total := 0
	for _, n := range rec.batches {
		total += n
		if n > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Errorf("no multi-plan ScoreBatch calls recorded (batch sizes: %v)", rec.batches)
	}
	if total != bat.Evaluations {
		t.Errorf("ScoreBatch scored %d plans but Evaluations reports %d", total, bat.Evaluations)
	}
}

// TestGreedyBatchedMatchesSequential checks the greedy path under both
// scorer contracts.
func TestGreedyBatchedMatchesSequential(t *testing.T) {
	cat := datagen.IMDBCatalog()
	q := fiveWayQuery()
	seq, err := Greedy(q, ScorerFunc(structuralScorer), DefaultOptions(cat))
	if err != nil {
		t.Fatal(err)
	}
	bat, err := Greedy(q, &recordingBatchScorer{}, DefaultOptions(cat))
	if err != nil {
		t.Fatal(err)
	}
	if seq.Plan.Signature() != bat.Plan.Signature() || seq.Score != bat.Score {
		t.Errorf("greedy paths diverge: sequential (%s, %v), batched (%s, %v)",
			seq.Plan.Signature(), seq.Score, bat.Plan.Signature(), bat.Score)
	}
}

// TestGreedyDescendScoresCompleteStart guards the fix for greedyDescend
// returning score 0.0 when the starting plan needs no descent: the starting
// plan must be scored before the loop so Result.Score is meaningful.
func TestGreedyDescendScoresCompleteStart(t *testing.T) {
	cat := datagen.IMDBCatalog()
	q := fiveWayQuery()
	res, err := BestFirst(q, ScorerFunc(structuralScorer), Options{Catalog: cat, MaxExpansions: 2000})
	if err != nil {
		t.Fatal(err)
	}
	complete := res.Plan
	if !complete.IsComplete() {
		t.Fatal("best-first did not return a complete plan")
	}
	got, score, evals, steps := greedyDescend(complete, ScorerFunc(structuralScorer), plan.ChildrenOptions{Catalog: cat})
	if got != complete {
		t.Fatalf("greedyDescend moved away from a complete plan")
	}
	if want := structuralScorer(complete); score != want {
		t.Errorf("greedyDescend score for complete start = %v, want %v", score, want)
	}
	if evals != 1 {
		t.Errorf("greedyDescend evals for complete start = %d, want 1", evals)
	}
	if steps != 0 {
		t.Errorf("greedyDescend steps for complete start = %d, want 0", steps)
	}
}

// TestBatchedAdapter checks that Batched passes batch-native scorers through
// and wraps per-plan scorers.
func TestBatchedAdapter(t *testing.T) {
	rec := &recordingBatchScorer{}
	if got := Batched(scorerOnly{}); got == nil {
		t.Fatal("Batched returned nil for a plain Scorer")
	} else if _, ok := got.(ScorerFunc); !ok {
		t.Errorf("Batched(plain Scorer) = %T, want ScorerFunc", got)
	}
	// A type that already implements BatchScorer must pass through untouched.
	cat := datagen.IMDBCatalog()
	q := fiveWayQuery()
	if _, err := BestFirst(q, rec, DefaultOptions(cat)); err != nil {
		t.Fatal(err)
	}
	if len(rec.batches) == 0 {
		t.Error("batch-native scorer was never invoked")
	}

	// The sequential wrapper must produce the same scores as the scorer.
	wrapped := Batched(scorerOnly{})
	p := plan.Initial(q)
	if got := wrapped.ScoreBatch([]*plan.Plan{p})[0]; got != structuralScorer(p) {
		t.Errorf("sequential wrapper score %v, want %v", got, structuralScorer(p))
	}
}

// scorerOnly implements Scorer but not BatchScorer.
type scorerOnly struct{}

func (scorerOnly) Score(p *plan.Plan) float64 { return structuralScorer(p) }
