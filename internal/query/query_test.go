package query

import (
	"strings"
	"testing"

	"neo/internal/datagen"
	"neo/internal/storage"
)

func sampleQuery() *Query {
	return New("q1",
		[]string{"title", "movie_keyword", "keyword"},
		[]JoinPredicate{
			{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
			{LeftTable: "movie_keyword", LeftColumn: "keyword_id", RightTable: "keyword", RightColumn: "id"},
		},
		[]Predicate{
			{Table: "keyword", Column: "keyword", Op: Eq, Value: storage.StringValue("love")},
			{Table: "title", Column: "production_year", Op: Gt, Value: storage.IntValue(2000)},
		})
}

func TestNewCanonicalisesRelations(t *testing.T) {
	q := New("x", []string{"zeta", "alpha", "mid"}, nil, nil)
	want := []string{"alpha", "mid", "zeta"}
	for i, r := range q.Relations {
		if r != want[i] {
			t.Fatalf("Relations = %v, want %v", q.Relations, want)
		}
	}
}

func TestPredicateMatches(t *testing.T) {
	cases := []struct {
		p    Predicate
		v    storage.Value
		want bool
	}{
		{Predicate{Op: Eq, Value: storage.IntValue(5)}, storage.IntValue(5), true},
		{Predicate{Op: Eq, Value: storage.IntValue(5)}, storage.IntValue(6), false},
		{Predicate{Op: Ne, Value: storage.IntValue(5)}, storage.IntValue(6), true},
		{Predicate{Op: Lt, Value: storage.IntValue(5)}, storage.IntValue(4), true},
		{Predicate{Op: Lt, Value: storage.IntValue(5)}, storage.IntValue(5), false},
		{Predicate{Op: Le, Value: storage.IntValue(5)}, storage.IntValue(5), true},
		{Predicate{Op: Gt, Value: storage.IntValue(5)}, storage.IntValue(6), true},
		{Predicate{Op: Ge, Value: storage.IntValue(5)}, storage.IntValue(5), true},
		{Predicate{Op: Ge, Value: storage.IntValue(5)}, storage.IntValue(4), false},
		{Predicate{Op: Like, Value: storage.StringValue("love")}, storage.StringValue("my-love-story"), true},
		{Predicate{Op: Like, Value: storage.StringValue("LOVE")}, storage.StringValue("my-love-story"), true},
		{Predicate{Op: Like, Value: storage.StringValue("war")}, storage.StringValue("peace"), false},
		{Predicate{Op: Eq, Value: storage.StringValue("a")}, storage.StringValue("a"), true},
		{Predicate{Op: CmpOp(99), Value: storage.IntValue(1)}, storage.IntValue(1), false},
	}
	for i, tc := range cases {
		if got := tc.p.Matches(tc.v); got != tc.want {
			t.Errorf("case %d: Matches(%v %s %v) = %v, want %v", i, tc.v, tc.p.Op, tc.p.Value, got, tc.want)
		}
	}
}

func TestCmpOpString(t *testing.T) {
	ops := map[CmpOp]string{Eq: "=", Ne: "<>", Lt: "<", Le: "<=", Gt: ">", Ge: ">=", Like: "LIKE"}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(op), op.String(), want)
		}
	}
	if !strings.Contains(CmpOp(42).String(), "42") {
		t.Errorf("unknown CmpOp should include its number")
	}
}

func TestJoinPredicateHelpers(t *testing.T) {
	j := JoinPredicate{LeftTable: "a", LeftColumn: "x", RightTable: "b", RightColumn: "y"}
	if !j.Connects("a", "b") || !j.Connects("b", "a") {
		t.Errorf("Connects should be symmetric")
	}
	if j.Connects("a", "c") {
		t.Errorf("Connects(a,c) should be false")
	}
	if !j.Touches("a") || !j.Touches("b") || j.Touches("c") {
		t.Errorf("Touches misbehaves")
	}
	if j.String() != "a.x = b.y" {
		t.Errorf("String = %q", j.String())
	}
}

func TestQueryAccessors(t *testing.T) {
	q := sampleQuery()
	if q.NumJoins() != 2 {
		t.Errorf("NumJoins = %d, want 2", q.NumJoins())
	}
	if !q.HasRelation("title") || q.HasRelation("cast_info") {
		t.Errorf("HasRelation misbehaves")
	}
	preds := q.PredicatesOn("keyword")
	if len(preds) != 1 || preds[0].Column != "keyword" {
		t.Errorf("PredicatesOn(keyword) = %v", preds)
	}
	if len(q.PredicatesOn("movie_keyword")) != 0 {
		t.Errorf("PredicatesOn(movie_keyword) should be empty")
	}
}

func TestJoinsBetweenAndConnected(t *testing.T) {
	q := sampleQuery()
	left := map[string]bool{"title": true}
	right := map[string]bool{"movie_keyword": true}
	js := q.JoinsBetween(left, right)
	if len(js) != 1 {
		t.Fatalf("JoinsBetween = %v, want 1 join", js)
	}
	if !q.Connected(left, right) {
		t.Errorf("title and movie_keyword should be connected")
	}
	if q.Connected(map[string]bool{"title": true}, map[string]bool{"keyword": true}) {
		t.Errorf("title and keyword are not directly connected")
	}
}

func TestJoinGraph(t *testing.T) {
	cat := datagen.IMDBCatalog()
	q := sampleQuery()
	g := q.JoinGraph(cat)
	ti := cat.TableIndex("title")
	mki := cat.TableIndex("movie_keyword")
	ki := cat.TableIndex("keyword")
	ci := cat.TableIndex("cast_info")
	if !g[ti][mki] || !g[mki][ti] {
		t.Errorf("expected edge title-movie_keyword")
	}
	if !g[mki][ki] {
		t.Errorf("expected edge movie_keyword-keyword")
	}
	if g[ti][ki] {
		t.Errorf("unexpected edge title-keyword")
	}
	for j := range g[ci] {
		if g[ci][j] {
			t.Errorf("cast_info should have an empty row")
		}
	}
}

func TestValidateAcceptsGoodQuery(t *testing.T) {
	cat := datagen.IMDBCatalog()
	if err := sampleQuery().Validate(cat); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	single := New("s", []string{"title"}, nil, []Predicate{
		{Table: "title", Column: "kind", Op: Eq, Value: storage.StringValue("movie")},
	})
	if err := single.Validate(cat); err != nil {
		t.Fatalf("single-table Validate: %v", err)
	}
}

func TestValidateRejectsBadQueries(t *testing.T) {
	cat := datagen.IMDBCatalog()
	cases := []struct {
		name string
		q    *Query
		want string
	}{
		{"empty", New("q", nil, nil, nil), "no relations"},
		{"unknown relation", New("q", []string{"nope"}, nil, nil), "unknown relation"},
		{
			"join to missing relation",
			New("q", []string{"title", "movie_keyword"},
				[]JoinPredicate{{LeftTable: "movie_keyword", LeftColumn: "keyword_id", RightTable: "keyword", RightColumn: "id"}}, nil),
			"not in FROM",
		},
		{
			"join unknown column",
			New("q", []string{"title", "movie_keyword"},
				[]JoinPredicate{{LeftTable: "movie_keyword", LeftColumn: "wrong", RightTable: "title", RightColumn: "id"}}, nil),
			"unknown column",
		},
		{
			"predicate on missing relation",
			New("q", []string{"title"}, nil,
				[]Predicate{{Table: "keyword", Column: "keyword", Op: Eq, Value: storage.StringValue("x")}}),
			"not in FROM",
		},
		{
			"predicate type mismatch",
			New("q", []string{"title"}, nil,
				[]Predicate{{Table: "title", Column: "production_year", Op: Eq, Value: storage.StringValue("x")}}),
			"compares",
		},
		{
			"disconnected join graph",
			New("q", []string{"title", "keyword"}, nil, nil),
			"not connected",
		},
		{
			"duplicate relation",
			&Query{ID: "q", Relations: []string{"title", "title"}},
			"duplicate relation",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.q.Validate(cat)
			if err == nil {
				t.Fatalf("expected error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestSQLRendering(t *testing.T) {
	q := sampleQuery()
	sql := q.SQL()
	for _, want := range []string{
		"SELECT count(*)", "FROM", "keyword, movie_keyword, title",
		"movie_keyword.movie_id = title.id", "keyword.keyword = 'love'", "title.production_year > 2000",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL %q missing %q", sql, want)
		}
	}
	noPred := New("q", []string{"title"}, nil, nil)
	if strings.Contains(noPred.SQL(), "WHERE") {
		t.Errorf("query without predicates should have no WHERE clause: %s", noPred.SQL())
	}
}

func TestSignature(t *testing.T) {
	q := sampleQuery()
	// Same structure under a different ID and different predicate/join
	// declaration order must produce the same signature.
	reordered := New("other-id", q.Relations,
		[]JoinPredicate{q.Joins[1], q.Joins[0]},
		[]Predicate{q.Predicates[1], q.Predicates[0]})
	if q.Signature() != reordered.Signature() {
		t.Errorf("signature should be ID- and order-independent:\n%s\n%s", q.Signature(), reordered.Signature())
	}
	// Swapping a join predicate's sides is the same join.
	j := q.Joins[0]
	swapped := New("swap", q.Relations,
		append([]JoinPredicate{{LeftTable: j.RightTable, LeftColumn: j.RightColumn, RightTable: j.LeftTable, RightColumn: j.LeftColumn}}, q.Joins[1:]...),
		q.Predicates)
	if q.Signature() != swapped.Signature() {
		t.Errorf("signature should normalise join sides")
	}
	// A different predicate value is a different signature.
	changed := New(q.ID, q.Relations, q.Joins,
		append([]Predicate{{Table: q.Predicates[0].Table, Column: q.Predicates[0].Column, Op: q.Predicates[0].Op, Value: storage.StringValue("war")}}, q.Predicates[1:]...))
	if q.Signature() == changed.Signature() {
		t.Errorf("different predicates should produce different signatures")
	}
	// Fewer relations is a different signature.
	single := New("s", []string{"title"}, nil, nil)
	if single.Signature() == q.Signature() {
		t.Errorf("different relation sets should produce different signatures")
	}
}
