// Package treeconv implements tree convolution and dynamic pooling (Mou et
// al., "Convolutional Neural Networks over Tree Structures"), the operations
// Neo's value network uses to process tree-structured execution plans
// (Section 4.1 and Appendix A of the paper).
//
// A tree convolution filter consists of three weight vectors (e_p, e_l, e_r)
// applied to every parent/left-child/right-child triangle of the tree; a
// filterbank of c_out such filters maps a tree whose nodes carry c_in-channel
// vectors to a structurally identical tree whose nodes carry c_out channels.
// Dynamic pooling takes the elementwise maximum over all node vectors,
// flattening a variable-shaped tree into a fixed-size vector.
package treeconv

import (
	"fmt"
	"math"
	"math/rand"

	"neo/internal/nn"
)

// Tree is a binary tree of feature vectors. Leaves have nil children; the
// convolution treats missing children as all-zero vectors, exactly as the
// paper attaches zero-filled children to leaf nodes.
type Tree struct {
	Data        []float64
	Left, Right *Tree
}

// NewLeaf creates a leaf node carrying the given vector.
func NewLeaf(data []float64) *Tree { return &Tree{Data: data} }

// NewNode creates an internal node carrying the given vector.
func NewNode(data []float64, left, right *Tree) *Tree {
	return &Tree{Data: data, Left: left, Right: right}
}

// NumNodes returns the number of nodes in the tree.
func (t *Tree) NumNodes() int {
	if t == nil {
		return 0
	}
	return 1 + t.Left.NumNodes() + t.Right.NumNodes()
}

// Walk visits every node in pre-order.
func (t *Tree) Walk(fn func(*Tree)) {
	if t == nil {
		return
	}
	fn(t)
	t.Left.Walk(fn)
	t.Right.Walk(fn)
}

// Map returns a structurally identical tree whose node vectors are fn(node).
func (t *Tree) Map(fn func(*Tree) []float64) *Tree {
	if t == nil {
		return nil
	}
	return &Tree{Data: fn(t), Left: t.Left.Map(fn), Right: t.Right.Map(fn)}
}

// Layer is a tree-convolution layer: a filterbank of OutChannels filters over
// InChannels input channels, followed by a leaky-ReLU activation.
type Layer struct {
	InChannels, OutChannels int
	// EP, EL, ER are the parent / left-child / right-child weight matrices,
	// each OutChannels×InChannels (row-major), plus a bias per filter.
	EP, EL, ER *nn.Param
	Bias       *nn.Param
	Act        *nn.LeakyReLU
}

// NewLayer creates a tree convolution layer with random initialisation.
func NewLayer(in, out int, rng *rand.Rand) *Layer {
	mk := func(name string) *nn.Param {
		p := &nn.Param{Name: name, Value: make([]float64, in*out), Grad: make([]float64, in*out)}
		bound := math.Sqrt(2.0 / float64(3*in))
		for i := range p.Value {
			p.Value[i] = (rng.Float64()*2 - 1) * bound
		}
		return p
	}
	return &Layer{
		InChannels:  in,
		OutChannels: out,
		EP:          mk(fmt.Sprintf("treeconv_%dx%d_ep", out, in)),
		EL:          mk(fmt.Sprintf("treeconv_%dx%d_el", out, in)),
		ER:          mk(fmt.Sprintf("treeconv_%dx%d_er", out, in)),
		Bias:        &nn.Param{Name: fmt.Sprintf("treeconv_%dx%d_b", out, in), Value: make([]float64, out), Grad: make([]float64, out)},
		Act:         nn.NewLeakyReLU(),
	}
}

// Params implements nn.Layer.
func (l *Layer) Params() []*nn.Param { return []*nn.Param{l.EP, l.EL, l.ER, l.Bias} }

// Tape records one forward pass through a layer for backpropagation.
type Tape struct {
	input  *Tree
	preAct *Tree // pre-activation outputs, same structure
	output *Tree
}

// Output returns the convolved tree.
func (t *Tape) Output() *Tree { return t.output }

// Forward convolves the filterbank over the tree and applies the activation.
func (l *Layer) Forward(t *Tree) *Tape {
	if t == nil {
		return &Tape{}
	}
	pre := l.convolve(t)
	out := pre.Map(func(n *Tree) []float64 { return l.Act.Forward(n.Data) })
	return &Tape{input: t, preAct: pre, output: out}
}

func (l *Layer) convolve(t *Tree) *Tree {
	if t == nil {
		return nil
	}
	out := make([]float64, l.OutChannels)
	leftData := zerosIfNil(t.Left, l.InChannels)
	rightData := zerosIfNil(t.Right, l.InChannels)
	for o := 0; o < l.OutChannels; o++ {
		sum := l.Bias.Value[o]
		ep := l.EP.Value[o*l.InChannels : (o+1)*l.InChannels]
		el := l.EL.Value[o*l.InChannels : (o+1)*l.InChannels]
		er := l.ER.Value[o*l.InChannels : (o+1)*l.InChannels]
		for i := 0; i < l.InChannels; i++ {
			sum += ep[i] * t.Data[i]
			sum += el[i] * leftData[i]
			sum += er[i] * rightData[i]
		}
		out[o] = sum
	}
	return &Tree{Data: out, Left: l.convolve(t.Left), Right: l.convolve(t.Right)}
}

// Backward propagates a gradient tree (same structure as the output) through
// the layer, accumulating filter gradients and returning the gradient tree
// with respect to the input.
func (l *Layer) Backward(tape *Tape, gradOut *Tree) *Tree {
	if tape.input == nil || gradOut == nil {
		return nil
	}
	// Gradient of the activation.
	gradPre := zipMap(tape.preAct, gradOut, func(pre, g []float64) []float64 {
		return l.Act.Backward(pre, g)
	})
	// Allocate a zero gradient tree matching the input.
	gradIn := tape.input.Map(func(n *Tree) []float64 { return make([]float64, l.InChannels) })
	l.backwardNode(tape.input, gradPre, gradIn)
	return gradIn
}

// backwardNode handles one parent/left/right triangle.
func (l *Layer) backwardNode(in, gradPre, gradIn *Tree) {
	if in == nil || gradPre == nil {
		return
	}
	leftData := zerosIfNil(in.Left, l.InChannels)
	rightData := zerosIfNil(in.Right, l.InChannels)
	for o := 0; o < l.OutChannels; o++ {
		g := gradPre.Data[o]
		if g == 0 {
			continue
		}
		l.Bias.Grad[o] += g
		ep := l.EP.Value[o*l.InChannels : (o+1)*l.InChannels]
		el := l.EL.Value[o*l.InChannels : (o+1)*l.InChannels]
		er := l.ER.Value[o*l.InChannels : (o+1)*l.InChannels]
		epg := l.EP.Grad[o*l.InChannels : (o+1)*l.InChannels]
		elg := l.EL.Grad[o*l.InChannels : (o+1)*l.InChannels]
		erg := l.ER.Grad[o*l.InChannels : (o+1)*l.InChannels]
		for i := 0; i < l.InChannels; i++ {
			epg[i] += g * in.Data[i]
			elg[i] += g * leftData[i]
			erg[i] += g * rightData[i]
			gradIn.Data[i] += g * ep[i]
			if in.Left != nil {
				gradIn.Left.Data[i] += g * el[i]
			}
			if in.Right != nil {
				gradIn.Right.Data[i] += g * er[i]
			}
		}
	}
	l.backwardNode(in.Left, gradPre.Left, gradIn.Left)
	l.backwardNode(in.Right, gradPre.Right, gradIn.Right)
}

// Stack is a sequence of tree-convolution layers applied back to back.
type Stack struct {
	Layers []*Layer
}

// NewStack builds a stack with the given channel sizes, e.g. channels =
// [in, 64, 64, 32] creates three layers.
func NewStack(channels []int, rng *rand.Rand) *Stack {
	if len(channels) < 2 {
		panic("treeconv: NewStack needs at least two channel counts")
	}
	s := &Stack{}
	for i := 0; i+1 < len(channels); i++ {
		s.Layers = append(s.Layers, NewLayer(channels[i], channels[i+1], rng))
	}
	return s
}

// Params implements nn.Layer.
func (s *Stack) Params() []*nn.Param {
	var out []*nn.Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// StackTape records the per-layer tapes of one forward pass.
type StackTape struct {
	tapes  []*Tape
	output *Tree
}

// Output returns the final convolved tree.
func (t *StackTape) Output() *Tree { return t.output }

// Forward runs every layer in sequence.
func (s *Stack) Forward(t *Tree) *StackTape {
	tape := &StackTape{}
	cur := t
	for _, l := range s.Layers {
		lt := l.Forward(cur)
		tape.tapes = append(tape.tapes, lt)
		cur = lt.Output()
	}
	tape.output = cur
	return tape
}

// Backward propagates a gradient tree through the stack and returns the
// gradient with respect to the input tree.
func (s *Stack) Backward(tape *StackTape, gradOut *Tree) *Tree {
	grad := gradOut
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(tape.tapes[i], grad)
	}
	return grad
}

// DynamicPool flattens a tree into a fixed-size vector by taking the
// elementwise maximum over all node vectors. The returned argmax slice
// records, for every channel, which node supplied the maximum (used by
// PoolBackward).
func DynamicPool(t *Tree) (pooled []float64, argmax []*Tree) {
	if t == nil {
		return nil, nil
	}
	dim := len(t.Data)
	pooled = make([]float64, dim)
	argmax = make([]*Tree, dim)
	for i := range pooled {
		pooled[i] = math.Inf(-1)
	}
	t.Walk(func(n *Tree) {
		for i, v := range n.Data {
			if v > pooled[i] {
				pooled[i] = v
				argmax[i] = n
			}
		}
	})
	return pooled, argmax
}

// PoolBackward converts a gradient on the pooled vector into a gradient tree
// (zero everywhere except at the argmax node of each channel).
func PoolBackward(t *Tree, argmax []*Tree, grad []float64) *Tree {
	if t == nil {
		return nil
	}
	dim := len(t.Data)
	gradTree := t.Map(func(n *Tree) []float64 { return make([]float64, dim) })
	// Build a mapping from original nodes to gradient nodes by walking both
	// trees in the same order.
	var origs, grads []*Tree
	t.Walk(func(n *Tree) { origs = append(origs, n) })
	gradTree.Walk(func(n *Tree) { grads = append(grads, n) })
	index := make(map[*Tree]*Tree, len(origs))
	for i := range origs {
		index[origs[i]] = grads[i]
	}
	for i, src := range argmax {
		if src == nil {
			continue
		}
		index[src].Data[i] += grad[i]
	}
	return gradTree
}

func zerosIfNil(t *Tree, dim int) []float64 {
	if t == nil {
		return make([]float64, dim)
	}
	return t.Data
}

func zipMap(a, b *Tree, fn func(av, bv []float64) []float64) *Tree {
	if a == nil || b == nil {
		return nil
	}
	return &Tree{
		Data:  fn(a.Data, b.Data),
		Left:  zipMap(a.Left, b.Left, fn),
		Right: zipMap(a.Right, b.Right, fn),
	}
}
