// Unseen queries: a miniature version of the paper's Figure 13.
//
// Neo generalises to queries drawn from the same workload distribution, but
// the harder test is a set of *entirely new* queries sharing no predicates
// or join graphs with the training workload (Ext-JOB). This example trains
// Neo on a JOB-like workload, evaluates it on brand-new queries, then lets
// it observe those queries for a few extra episodes and measures how quickly
// it adapts.
//
// Run with:
//
//	go run ./examples/unseen_queries
package main

import (
	"fmt"
	"log"

	"neo/pkg/neo"
)

func main() {
	sys, err := neo.Open(neo.Config{
		Dataset:  "imdb",
		Engine:   "sqlite",
		Encoding: neo.RVector,
		Scale:    0.3,
		Seed:     11,
		Episodes: 5,
	})
	if err != nil {
		log.Fatal(err)
	}

	base, err := sys.GenerateWorkload(18)
	if err != nil {
		log.Fatal(err)
	}
	train, _ := base.Split(1.0, 1)
	unseen, err := sys.GenerateUnseenWorkload(6, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training on %d queries; evaluating on %d entirely new queries\n", len(train), len(unseen.Queries))

	if err := sys.Bootstrap(train); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Train(train); err != nil {
		log.Fatal(err)
	}

	evaluate := func(label string) float64 {
		var neoTotal, nativeTotal float64
		for _, q := range unseen.Queries {
			neoLat, nativeLat, err := sys.Compare(q)
			if err != nil {
				log.Fatal(err)
			}
			neoTotal += neoLat
			nativeTotal += nativeLat
		}
		rel := neoTotal / nativeTotal
		fmt.Printf("  %-28s neo/native = %.3f\n", label, rel)
		return rel
	}

	fmt.Println("performance on the unseen queries:")
	before := evaluate("before seeing them")

	// Let Neo observe the new queries for a handful of episodes (the paper
	// uses 5) and re-evaluate.
	combined := append(append([]*neo.Query{}, train...), unseen.Queries...)
	for ep := 1; ep <= 5; ep++ {
		if _, err := sys.Neo.RunEpisode(100+ep, combined); err != nil {
			log.Fatal(err)
		}
	}
	after := evaluate("after 5 extra episodes")

	if after < before {
		fmt.Printf("\nNeo adapted: %.0f%% better on the new queries after seeing them a few times\n", 100*(1-after/before))
	} else {
		fmt.Println("\nno improvement this run — increase episodes or workload size")
	}
}
