// Package nn is a small, dependency-free neural-network library providing
// exactly the primitives Neo's value network needs: fully connected layers,
// leaky rectified linear units, layer normalization, an L2 loss and the Adam
// optimizer, all with explicit forward/backward passes.
//
// The design is deliberately simple — per-sample forward/backward with
// gradient accumulation — because the value network is small (tens of
// thousands of parameters) and the bottleneck in the reproduction is plan
// execution, not network training.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Param is a trainable parameter vector with its accumulated gradient.
type Param struct {
	// Name identifies the parameter for debugging.
	Name string
	// Value holds the parameter values.
	Value []float64
	// Grad accumulates gradients between optimizer steps.
	Grad []float64
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// Layer is any component with trainable parameters.
type Layer interface {
	// Params returns the layer's trainable parameters.
	Params() []*Param
}

// Linear is a fully connected layer computing y = W·x + b.
type Linear struct {
	In, Out int
	W       *Param // Out×In, row-major
	B       *Param // Out
}

// NewLinear creates a fully connected layer with Kaiming-uniform
// initialisation.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	l := &Linear{
		In:  in,
		Out: out,
		W:   &Param{Name: fmt.Sprintf("linear_%dx%d_w", out, in), Value: make([]float64, in*out), Grad: make([]float64, in*out)},
		B:   &Param{Name: fmt.Sprintf("linear_%dx%d_b", out, in), Value: make([]float64, out), Grad: make([]float64, out)},
	}
	bound := math.Sqrt(6.0 / float64(in))
	for i := range l.W.Value {
		l.W.Value[i] = (rng.Float64()*2 - 1) * bound
	}
	return l
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// Forward computes W·x + b.
func (l *Linear) Forward(x []float64) []float64 {
	if len(x) != l.In {
		panic(fmt.Sprintf("nn: Linear.Forward input size %d, want %d", len(x), l.In))
	}
	y := make([]float64, l.Out)
	for o := 0; o < l.Out; o++ {
		sum := l.B.Value[o]
		row := l.W.Value[o*l.In : (o+1)*l.In]
		for i, xi := range x {
			sum += row[i] * xi
		}
		y[o] = sum
	}
	return y
}

// Backward accumulates parameter gradients for the given input and output
// gradient, and returns the gradient with respect to the input.
func (l *Linear) Backward(x, gradOut []float64) []float64 {
	gradIn := make([]float64, l.In)
	for o := 0; o < l.Out; o++ {
		g := gradOut[o]
		l.B.Grad[o] += g
		row := l.W.Value[o*l.In : (o+1)*l.In]
		gradRow := l.W.Grad[o*l.In : (o+1)*l.In]
		for i, xi := range x {
			gradRow[i] += g * xi
			gradIn[i] += g * row[i]
		}
	}
	return gradIn
}

// LeakyReLU is the leaky rectified linear unit used throughout the paper's
// network (negative inputs are scaled by Alpha).
type LeakyReLU struct {
	Alpha float64
}

// NewLeakyReLU returns a leaky ReLU with the conventional slope of 0.01.
func NewLeakyReLU() *LeakyReLU { return &LeakyReLU{Alpha: 0.01} }

// Params implements Layer (no trainable parameters).
func (r *LeakyReLU) Params() []*Param { return nil }

// Forward applies the activation elementwise.
func (r *LeakyReLU) Forward(x []float64) []float64 {
	y := make([]float64, len(x))
	for i, v := range x {
		if v >= 0 {
			y[i] = v
		} else {
			y[i] = r.Alpha * v
		}
	}
	return y
}

// Backward returns the gradient with respect to the input.
func (r *LeakyReLU) Backward(x, gradOut []float64) []float64 {
	gradIn := make([]float64, len(x))
	for i, v := range x {
		if v >= 0 {
			gradIn[i] = gradOut[i]
		} else {
			gradIn[i] = r.Alpha * gradOut[i]
		}
	}
	return gradIn
}

// LayerNorm normalises its input to zero mean and unit variance and applies a
// learned affine transform, as in Ba et al. (used by the paper to stabilise
// training).
type LayerNorm struct {
	Dim   int
	Gamma *Param
	Beta  *Param
	Eps   float64
}

// NewLayerNorm creates a layer-normalisation layer of the given width.
func NewLayerNorm(dim int) *LayerNorm {
	ln := &LayerNorm{
		Dim:   dim,
		Gamma: &Param{Name: fmt.Sprintf("layernorm_%d_gamma", dim), Value: make([]float64, dim), Grad: make([]float64, dim)},
		Beta:  &Param{Name: fmt.Sprintf("layernorm_%d_beta", dim), Value: make([]float64, dim), Grad: make([]float64, dim)},
		Eps:   1e-5,
	}
	for i := range ln.Gamma.Value {
		ln.Gamma.Value[i] = 1
	}
	return ln
}

// Params implements Layer.
func (ln *LayerNorm) Params() []*Param { return []*Param{ln.Gamma, ln.Beta} }

// Forward normalises x.
func (ln *LayerNorm) Forward(x []float64) []float64 {
	mean, std := meanStd(x, ln.Eps)
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = ln.Gamma.Value[i]*(v-mean)/std + ln.Beta.Value[i]
	}
	return y
}

// Backward accumulates parameter gradients and returns the input gradient.
func (ln *LayerNorm) Backward(x, gradOut []float64) []float64 {
	n := float64(len(x))
	mean, std := meanStd(x, ln.Eps)
	xhat := make([]float64, len(x))
	for i, v := range x {
		xhat[i] = (v - mean) / std
	}
	// Gradients w.r.t. gamma/beta.
	dxhat := make([]float64, len(x))
	for i := range x {
		ln.Gamma.Grad[i] += gradOut[i] * xhat[i]
		ln.Beta.Grad[i] += gradOut[i]
		dxhat[i] = gradOut[i] * ln.Gamma.Value[i]
	}
	// Gradient w.r.t. input (standard layer-norm backward).
	var sumDxhat, sumDxhatXhat float64
	for i := range x {
		sumDxhat += dxhat[i]
		sumDxhatXhat += dxhat[i] * xhat[i]
	}
	gradIn := make([]float64, len(x))
	for i := range x {
		gradIn[i] = (dxhat[i] - sumDxhat/n - xhat[i]*sumDxhatXhat/n) / std
	}
	return gradIn
}

func meanStd(x []float64, eps float64) (float64, float64) {
	if len(x) == 0 {
		return 0, 1
	}
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	variance := 0.0
	for _, v := range x {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(len(x))
	return mean, math.Sqrt(variance + eps)
}

// L2Loss returns the squared-error loss 0.5·(pred−target)² and its gradient
// with respect to pred. (The 0.5 factor keeps the gradient simply
// pred−target; the paper's L2 objective is minimised by the same optimum.)
func L2Loss(pred, target float64) (loss, grad float64) {
	d := pred - target
	return 0.5 * d * d, d
}

// Adam implements the Adam optimizer (Kingma & Ba), used by the paper for
// network training.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	step int
	m    map[*Param][]float64
	v    map[*Param][]float64
}

// NewAdam creates an Adam optimizer with the given learning rate and default
// moment coefficients.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param][]float64), v: make(map[*Param][]float64)}
}

// Step applies one update to every parameter using its accumulated gradient
// (optionally scaled by 1/batchSize) and clears the gradients.
func (a *Adam) Step(params []*Param, batchSize int) {
	if batchSize < 1 {
		batchSize = 1
	}
	a.step++
	scale := 1.0 / float64(batchSize)
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(p.Value))
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = make([]float64, len(p.Value))
			a.v[p] = v
		}
		for i := range p.Value {
			g := p.Grad[i]*scale + a.WeightDecay*p.Value[i]
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mhat := m[i] / bc1
			vhat := v[i] / bc2
			p.Value[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// MLP is a stack of Linear layers with leaky-ReLU activations (and optional
// layer normalisation) between them. The final layer is linear.
type MLP struct {
	Linears []*Linear
	Norms   []*LayerNorm // nil entries mean "no normalisation after layer i"
	Act     *LeakyReLU
}

// NewMLP builds an MLP with the given layer sizes, e.g. sizes = [64, 128,
// 64, 32] builds three Linear layers 64→128→64→32. When useNorm is true a
// LayerNorm is applied after every hidden activation.
func NewMLP(sizes []int, useNorm bool, rng *rand.Rand) *MLP {
	if len(sizes) < 2 {
		panic("nn: NewMLP needs at least an input and an output size")
	}
	m := &MLP{Act: NewLeakyReLU()}
	for i := 0; i+1 < len(sizes); i++ {
		m.Linears = append(m.Linears, NewLinear(sizes[i], sizes[i+1], rng))
		if useNorm && i+2 < len(sizes) {
			m.Norms = append(m.Norms, NewLayerNorm(sizes[i+1]))
		} else {
			m.Norms = append(m.Norms, nil)
		}
	}
	return m
}

// Params implements Layer.
func (m *MLP) Params() []*Param {
	var out []*Param
	for _, l := range m.Linears {
		out = append(out, l.Params()...)
	}
	for _, n := range m.Norms {
		if n != nil {
			out = append(out, n.Params()...)
		}
	}
	return out
}

// MLPTape records the intermediate activations of one forward pass so that
// Backward can be computed without re-running the network.
type MLPTape struct {
	inputs  [][]float64 // input to each Linear
	preAct  [][]float64 // Linear outputs (pre-activation)
	postAct [][]float64 // activation outputs (input to norm, if any)
	output  []float64
}

// Output returns the forward result recorded on the tape.
func (t *MLPTape) Output() []float64 { return t.output }

// Forward runs the MLP and returns a tape holding the activations.
func (m *MLP) Forward(x []float64) *MLPTape {
	tape := &MLPTape{}
	cur := x
	last := len(m.Linears) - 1
	for i, lin := range m.Linears {
		tape.inputs = append(tape.inputs, cur)
		pre := lin.Forward(cur)
		tape.preAct = append(tape.preAct, pre)
		if i == last {
			tape.postAct = append(tape.postAct, pre)
			cur = pre
			continue
		}
		act := m.Act.Forward(pre)
		tape.postAct = append(tape.postAct, act)
		if m.Norms[i] != nil {
			cur = m.Norms[i].Forward(act)
		} else {
			cur = act
		}
	}
	tape.output = cur
	return tape
}

// Backward propagates gradOut through the taped forward pass, accumulating
// parameter gradients, and returns the gradient with respect to the input.
func (m *MLP) Backward(tape *MLPTape, gradOut []float64) []float64 {
	grad := gradOut
	last := len(m.Linears) - 1
	for i := last; i >= 0; i-- {
		if i != last {
			if m.Norms[i] != nil {
				grad = m.Norms[i].Backward(tape.postAct[i], grad)
			}
			grad = m.Act.Backward(tape.preAct[i], grad)
		}
		grad = m.Linears[i].Backward(tape.inputs[i], grad)
	}
	return grad
}

// Concat concatenates vectors.
func Concat(vs ...[]float64) []float64 {
	n := 0
	for _, v := range vs {
		n += len(v)
	}
	out := make([]float64, 0, n)
	for _, v := range vs {
		out = append(out, v...)
	}
	return out
}
