// Command mdcheck validates the repository's markdown cross-references: every
// inline link or image whose target is a relative path must point at a file
// or directory that exists. External links (http, https, mailto) are not
// fetched — CI should not fail on someone else's outage — and pure #fragment
// links are skipped. Run from the repo root:
//
//	go run ./internal/tools/mdcheck [dir]
//
// Exits nonzero listing every broken link, so the CI docs job catches a
// renamed file whose references were not updated.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"neo/internal/tools/walk"
)

// linkRE matches inline markdown links and images: [text](target) /
// ![alt](target). Targets with spaces or nested parens are not used in this
// repo and are out of scope.
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// codeFenceRE matches fenced code-block delimiters; links inside fences are
// examples, not references.
var codeFenceRE = regexp.MustCompile("^\\s*```")

// check walks every .md file under root (via the shared repo walker, so
// .git, testdata and dot-directories are excluded) and returns one message
// per broken relative link plus the number of links it resolved.
func check(root string) (broken []string, checked int, err error) {
	files, err := walk.Files(root, ".md")
	if err != nil {
		return nil, 0, err
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, 0, err
		}
		b, c := checkFile(path, string(data))
		broken = append(broken, b...)
		checked += c
	}
	return broken, checked, nil
}

// checkFile scans one markdown document for broken relative links. Targets
// are resolved against the document's own directory, exactly as a markdown
// renderer would.
func checkFile(path, content string) (broken []string, checked int) {
	inFence := false
	for lineNo, line := range strings.Split(content, "\n") {
		if codeFenceRE.MatchString(line) {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") ||
				strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			checked++
			if _, err := os.Stat(resolved); err != nil {
				broken = append(broken, fmt.Sprintf("%s:%d: broken link %q (resolved %s)",
					path, lineNo+1, m[1], resolved))
			}
		}
	}
	return broken, checked
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	broken, checked, err := check(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdcheck:", err)
		os.Exit(2)
	}
	if len(broken) > 0 {
		for _, b := range broken {
			fmt.Fprintln(os.Stderr, b)
		}
		fmt.Fprintf(os.Stderr, "mdcheck: %d broken link(s)\n", len(broken))
		os.Exit(1)
	}
	fmt.Printf("mdcheck: %d relative links OK\n", checked)
}
