package executor

import (
	"math"
	"testing"

	"neo/internal/datagen"
	"neo/internal/plan"
	"neo/internal/query"
	"neo/internal/storage"
)

func imdb(t testing.TB) *storage.Database {
	t.Helper()
	db, err := datagen.GenerateIMDB(datagen.Config{Scale: 0.3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func loveQuery() *query.Query {
	return query.New("love",
		[]string{"title", "movie_keyword", "keyword"},
		[]query.JoinPredicate{
			{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
			{LeftTable: "movie_keyword", LeftColumn: "keyword_id", RightTable: "keyword", RightColumn: "id"},
		},
		[]query.Predicate{
			{Table: "keyword", Column: "keyword", Op: query.Eq, Value: storage.StringValue("love")},
		})
}

func TestExecuteRejectsPartialPlan(t *testing.T) {
	e := New(imdb(t))
	p := plan.Initial(loveQuery())
	if _, err := e.Execute(p); err == nil {
		t.Fatalf("expected error for partial plan")
	}
}

func TestExecuteSingleTableScan(t *testing.T) {
	db := imdb(t)
	e := New(db)
	q := query.New("single", []string{"title"}, nil, []query.Predicate{
		{Table: "title", Column: "kind", Op: query.Eq, Value: storage.StringValue("tv")},
	})
	p := &plan.Plan{Query: q, Roots: []*plan.Node{plan.Leaf("title", plan.TableScan)}}
	res, err := e.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against a manual count.
	want := 0
	title := db.Table("title")
	for i := 0; i < title.NumRows(); i++ {
		v, _ := title.Value("kind", i)
		if v.Str == "tv" {
			want++
		}
	}
	if res.OutputRows != float64(want) {
		t.Errorf("OutputRows = %f, want %d", res.OutputRows, want)
	}
	ns := res.Nodes[p.Roots[0]]
	if ns == nil {
		t.Fatalf("missing node stats for scan")
	}
	if ns.BaseRows != float64(title.NumRows()) {
		t.Errorf("BaseRows = %f, want %d", ns.BaseRows, title.NumRows())
	}
	if math.Abs(ns.Selectivity-float64(want)/float64(title.NumRows())) > 1e-9 {
		t.Errorf("Selectivity = %f", ns.Selectivity)
	}
}

func TestJoinOrderDoesNotChangeResultCardinality(t *testing.T) {
	db := imdb(t)
	e := New(db)
	q := loveQuery()

	mkT := plan.Leaf("movie_keyword", plan.TableScan)
	tT := plan.Leaf("title", plan.TableScan)
	kT := plan.Leaf("keyword", plan.TableScan)
	planA := &plan.Plan{Query: q, Roots: []*plan.Node{
		plan.Join2(plan.HashJoin, plan.Join2(plan.HashJoin, mkT, tT), kT),
	}}

	mk2 := plan.Leaf("movie_keyword", plan.TableScan)
	t2 := plan.Leaf("title", plan.TableScan)
	k2 := plan.Leaf("keyword", plan.TableScan)
	planB := &plan.Plan{Query: q, Roots: []*plan.Node{
		plan.Join2(plan.MergeJoin, plan.Join2(plan.LoopJoin, k2, mk2), t2),
	}}

	resA, err := e.Execute(planA)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := e.Execute(planB)
	if err != nil {
		t.Fatal(err)
	}
	if resA.OutputRows != resB.OutputRows {
		t.Errorf("different join orders produced different cardinalities: %f vs %f", resA.OutputRows, resB.OutputRows)
	}
	if resA.OutputRows <= 0 {
		t.Errorf("expected non-empty result for the love query")
	}
}

func TestCountMatchesExecute(t *testing.T) {
	e := New(imdb(t))
	q := loveQuery()
	count, err := e.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	mk := plan.Leaf("movie_keyword", plan.TableScan)
	ti := plan.Leaf("title", plan.TableScan)
	kw := plan.Leaf("keyword", plan.TableScan)
	p := &plan.Plan{Query: q, Roots: []*plan.Node{
		plan.Join2(plan.HashJoin, plan.Join2(plan.HashJoin, mk, ti), kw),
	}}
	res, err := e.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if count != res.OutputRows {
		t.Errorf("Count = %f, Execute = %f", count, res.OutputRows)
	}
}

func TestCrossProductFlag(t *testing.T) {
	e := New(imdb(t))
	q := query.New("cross", []string{"keyword", "info_type"}, nil, nil)
	p := &plan.Plan{Query: q, Roots: []*plan.Node{
		plan.Join2(plan.HashJoin, plan.Leaf("keyword", plan.TableScan), plan.Leaf("info_type", plan.TableScan)),
	}}
	res, err := e.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	ns := res.Nodes[p.Roots[0]]
	if !ns.CrossProduct {
		t.Errorf("expected cross product flag")
	}
	want := float64(len(datagen.Keywords) * 6)
	if math.Abs(res.OutputRows-want) > want*0.05 {
		t.Errorf("cross product cardinality = %f, want ~%f", res.OutputRows, want)
	}
}

func TestSamplingKeepsCardinalityApproximatelyCorrect(t *testing.T) {
	db := imdb(t)
	e := New(db)
	e.MaxRows = 500 // force aggressive sampling
	q := query.New("big",
		[]string{"title", "movie_keyword", "cast_info"},
		[]query.JoinPredicate{
			{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
			{LeftTable: "cast_info", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
		}, nil)
	p := &plan.Plan{Query: q, Roots: []*plan.Node{
		plan.Join2(plan.HashJoin,
			plan.Join2(plan.HashJoin, plan.Leaf("movie_keyword", plan.TableScan), plan.Leaf("title", plan.TableScan)),
			plan.Leaf("cast_info", plan.TableScan)),
	}}
	sampled, err := e.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	exact := New(db)
	exactRes, err := exact.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if exactRes.OutputRows == 0 {
		t.Fatalf("expected non-empty exact result")
	}
	ratio := sampled.OutputRows / exactRes.OutputRows
	if ratio < 0.3 || ratio > 3 {
		t.Errorf("sampled cardinality %f too far from exact %f (ratio %f)", sampled.OutputRows, exactRes.OutputRows, ratio)
	}
}

func TestNodeStatsOrderingAndIndexFlags(t *testing.T) {
	db := imdb(t)
	e := New(db)
	q := query.New("mkt",
		[]string{"movie_keyword", "title"},
		[]query.JoinPredicate{{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"}},
		nil)
	// Merge join of two base tables: title is sorted on its primary key id,
	// so the right side is sorted; movie_keyword sorted on its own pk, not
	// on movie_id, so the left side is not.
	join := plan.Join2(plan.MergeJoin, plan.Leaf("movie_keyword", plan.TableScan), plan.Leaf("title", plan.IndexScan))
	p := &plan.Plan{Query: q, Roots: []*plan.Node{join}}
	res, err := e.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	ns := res.Nodes[join]
	if ns.LeftSorted {
		t.Errorf("movie_keyword input should not count as sorted on movie_id")
	}
	if !ns.RightSorted {
		t.Errorf("title input should count as sorted on id (primary key)")
	}
	if !ns.InnerIndexOnJoinKey {
		t.Errorf("index scan on title.id should enable index-nested-loop flag")
	}
	if ns.LeftRows <= 0 || ns.RightRows <= 0 || ns.OutputRows <= 0 {
		t.Errorf("join node stats should be positive: %+v", ns)
	}
	// Every row of movie_keyword matches exactly one title.
	if math.Abs(ns.OutputRows-ns.LeftRows) > ns.LeftRows*0.01 {
		t.Errorf("FK join output %f should equal left input %f", ns.OutputRows, ns.LeftRows)
	}
}

func TestIndexOnPredicateFlag(t *testing.T) {
	db := imdb(t)
	e := New(db)
	q := query.New("year", []string{"title"}, nil, []query.Predicate{
		{Table: "title", Column: "production_year", Op: query.Eq, Value: storage.IntValue(2000)},
	})
	leaf := plan.Leaf("title", plan.IndexScan)
	p := &plan.Plan{Query: q, Roots: []*plan.Node{leaf}}
	res, err := e.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Nodes[leaf].IndexOnPredicate {
		t.Errorf("production_year is indexed; expected IndexOnPredicate")
	}
}

func TestTrueJoinCardinalities(t *testing.T) {
	e := New(imdb(t))
	q := loveQuery()
	cards, err := e.TrueJoinCardinalities(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(cards) < 3 {
		t.Fatalf("expected cardinalities for several subsets, got %v", cards)
	}
	full, ok := cards[SubsetKey([]string{"keyword", "movie_keyword", "title"})]
	if !ok {
		t.Fatalf("missing full-join cardinality: %v", cards)
	}
	count, err := e.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if full != count {
		t.Errorf("full-join cardinality %f != Count %f", full, count)
	}
}

func TestSelectivityExact(t *testing.T) {
	db := imdb(t)
	e := New(db)
	sel, err := e.Selectivity("title", []query.Predicate{
		{Table: "title", Column: "kind", Op: query.Eq, Value: storage.StringValue("movie")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sel <= 0 || sel >= 1 {
		t.Errorf("selectivity of kind=movie should be in (0,1), got %f", sel)
	}
	if _, err := e.Selectivity("nope", nil); err == nil {
		t.Errorf("expected error for unknown table")
	}
	if _, err := e.Selectivity("title", []query.Predicate{{Table: "title", Column: "none", Op: query.Eq, Value: storage.IntValue(0)}}); err == nil {
		t.Errorf("expected error for unknown column")
	}
}

func TestTable2CorrelationGroundTruth(t *testing.T) {
	// The Table 2 property: |love ∧ romance| > |love ∧ horror| in the data.
	e := New(imdb(t))
	build := func(keyword, genre string) *query.Query {
		return query.New(keyword+"-"+genre,
			[]string{"title", "movie_keyword", "keyword", "movie_info", "info_type"},
			[]query.JoinPredicate{
				{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
				{LeftTable: "movie_keyword", LeftColumn: "keyword_id", RightTable: "keyword", RightColumn: "id"},
				{LeftTable: "movie_info", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
				{LeftTable: "movie_info", LeftColumn: "info_type_id", RightTable: "info_type", RightColumn: "id"},
			},
			[]query.Predicate{
				{Table: "info_type", Column: "id", Op: query.Eq, Value: storage.IntValue(3)},
				{Table: "keyword", Column: "keyword", Op: query.Like, Value: storage.StringValue(keyword)},
				{Table: "movie_info", Column: "info", Op: query.Like, Value: storage.StringValue(genre)},
			})
	}
	loveRomance, err := e.Count(build("love", "romance"))
	if err != nil {
		t.Fatal(err)
	}
	loveHorror, err := e.Count(build("love", "horror"))
	if err != nil {
		t.Fatal(err)
	}
	if loveRomance <= loveHorror {
		t.Errorf("expected card(love,romance)=%f > card(love,horror)=%f", loveRomance, loveHorror)
	}
}

func TestClamp01(t *testing.T) {
	if Clamp01(-1) != 0 || Clamp01(2) != 1 || Clamp01(0.25) != 0.25 {
		t.Errorf("Clamp01 misbehaves")
	}
}

func BenchmarkExecuteThreeWayJoin(b *testing.B) {
	db, err := datagen.GenerateIMDB(datagen.Config{Scale: 0.3, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	e := New(db)
	q := loveQuery()
	mk := plan.Leaf("movie_keyword", plan.TableScan)
	ti := plan.Leaf("title", plan.TableScan)
	kw := plan.Leaf("keyword", plan.TableScan)
	p := &plan.Plan{Query: q, Roots: []*plan.Node{
		plan.Join2(plan.HashJoin, plan.Join2(plan.HashJoin, mk, ti), kw),
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Execute(p); err != nil {
			b.Fatal(err)
		}
	}
}
