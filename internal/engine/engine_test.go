package engine

import (
	"math"
	"testing"

	"neo/internal/datagen"
	"neo/internal/executor"
	"neo/internal/plan"
	"neo/internal/query"
	"neo/internal/storage"
)

func imdb(t testing.TB) *storage.Database {
	t.Helper()
	db, err := datagen.GenerateIMDB(datagen.Config{Scale: 0.3, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func loveQuery() *query.Query {
	return query.New("love",
		[]string{"title", "movie_keyword", "keyword"},
		[]query.JoinPredicate{
			{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
			{LeftTable: "movie_keyword", LeftColumn: "keyword_id", RightTable: "keyword", RightColumn: "id"},
		},
		[]query.Predicate{
			{Table: "keyword", Column: "keyword", Op: query.Eq, Value: storage.StringValue("love")},
		})
}

func goodPlan(q *query.Query) *plan.Plan {
	// Filtered keyword first, then movie_keyword, then title: small
	// intermediates throughout.
	return &plan.Plan{Query: q, Roots: []*plan.Node{
		plan.Join2(plan.HashJoin,
			plan.Join2(plan.HashJoin, plan.Leaf("keyword", plan.TableScan), plan.Leaf("movie_keyword", plan.TableScan)),
			plan.Leaf("title", plan.TableScan)),
	}}
}

func badPlan(q *query.Query) *plan.Plan {
	// title ⋈ movie_keyword first (large intermediate), keyword last, with
	// non-indexed loop joins: should be much slower on every engine.
	return &plan.Plan{Query: q, Roots: []*plan.Node{
		plan.Join2(plan.LoopJoin,
			plan.Join2(plan.LoopJoin, plan.Leaf("title", plan.TableScan), plan.Leaf("movie_keyword", plan.TableScan)),
			plan.Leaf("keyword", plan.TableScan)),
	}}
}

func TestProfilesAndLookup(t *testing.T) {
	ps := Profiles()
	if len(ps) != 4 {
		t.Fatalf("expected 4 profiles, got %d", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name] = true
		if p.CostScale <= 0 || p.Parallelism <= 0 || p.SeqRowCost <= 0 {
			t.Errorf("profile %s has non-positive coefficients: %+v", p.Name, p)
		}
	}
	for _, want := range []string{"postgres", "sqlite", "engine-m", "engine-o"} {
		if !names[want] {
			t.Errorf("missing profile %q", want)
		}
		if _, err := ProfileByName(want); err != nil {
			t.Errorf("ProfileByName(%q): %v", want, err)
		}
	}
	if _, err := ProfileByName("db2"); err == nil {
		t.Errorf("expected error for unknown profile")
	}
}

func TestExecuteProducesPositiveLatency(t *testing.T) {
	db := imdb(t)
	q := loveQuery()
	for _, prof := range Profiles() {
		e := New(prof, db)
		lat, res, err := e.Execute(goodPlan(q))
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		if lat <= 0 {
			t.Errorf("%s: latency should be positive, got %f", prof.Name, lat)
		}
		if res.OutputRows <= 0 {
			t.Errorf("%s: expected non-empty result", prof.Name)
		}
		if e.Executions() != 1 {
			t.Errorf("%s: Executions = %d, want 1", prof.Name, e.Executions())
		}
		if e.SimulatedTimeMS() <= 0 {
			t.Errorf("%s: SimulatedTimeMS should accumulate", prof.Name)
		}
	}
}

func TestBadPlanIsSlowerOnEveryEngine(t *testing.T) {
	db := imdb(t)
	q := loveQuery()
	for _, prof := range Profiles() {
		e := New(prof, db)
		goodLat, _, err := e.Execute(goodPlan(q))
		if err != nil {
			t.Fatal(err)
		}
		badLat, _, err := e.Execute(badPlan(q))
		if err != nil {
			t.Fatal(err)
		}
		if badLat <= goodLat {
			t.Errorf("%s: bad plan (%.2fms) should be slower than good plan (%.2fms)", prof.Name, badLat, goodLat)
		}
		// The blow-up should be substantial (order of magnitude-ish), which
		// is what gives Neo a learnable signal.
		if badLat < 3*goodLat {
			t.Errorf("%s: expected a large gap, got good=%.2f bad=%.2f", prof.Name, goodLat, badLat)
		}
	}
}

func TestCostResultDeterministicAndNoiseBounded(t *testing.T) {
	db := imdb(t)
	q := loveQuery()
	e := New(PostgreSQLProfile(), db)
	p := goodPlan(q)
	res, err := e.Executor().Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	c1 := e.CostResult(p.Roots[0], res.Nodes)
	c2 := e.CostResult(p.Roots[0], res.Nodes)
	if c1 != c2 {
		t.Errorf("CostResult should be deterministic: %f vs %f", c1, c2)
	}
	// Execute adds bounded multiplicative noise around the deterministic cost.
	for i := 0; i < 20; i++ {
		lat, _, err := e.Execute(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(lat-c1)/c1 > e.Profile.NoiseFraction+1e-9 {
			t.Errorf("latency %f deviates more than noise fraction from %f", lat, c1)
		}
	}
}

func TestIndexNestedLoopBeatsNaiveLoop(t *testing.T) {
	db := imdb(t)
	q := query.New("mkt",
		[]string{"movie_keyword", "title"},
		[]query.JoinPredicate{{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"}},
		nil)
	inl := &plan.Plan{Query: q, Roots: []*plan.Node{
		plan.Join2(plan.LoopJoin, plan.Leaf("movie_keyword", plan.TableScan), plan.Leaf("title", plan.IndexScan)),
	}}
	naive := &plan.Plan{Query: q, Roots: []*plan.Node{
		plan.Join2(plan.LoopJoin, plan.Leaf("movie_keyword", plan.TableScan), plan.Leaf("title", plan.TableScan)),
	}}
	e := New(SQLiteProfile(), db)
	inlLat, _, err := e.Execute(inl)
	if err != nil {
		t.Fatal(err)
	}
	naiveLat, _, err := e.Execute(naive)
	if err != nil {
		t.Fatal(err)
	}
	if inlLat >= naiveLat {
		t.Errorf("index nested loop (%.2f) should beat naive nested loop (%.2f)", inlLat, naiveLat)
	}
}

func TestMergeJoinBenefitsFromSortedInput(t *testing.T) {
	db := imdb(t)
	q := query.New("mkt",
		[]string{"movie_keyword", "title"},
		[]query.JoinPredicate{{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"}},
		nil)
	p := &plan.Plan{Query: q, Roots: []*plan.Node{
		plan.Join2(plan.MergeJoin, plan.Leaf("movie_keyword", plan.TableScan), plan.Leaf("title", plan.TableScan)),
	}}
	e := New(EngineOProfile(), db)
	res, err := e.Executor().Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	withSort := e.CostResult(p.Roots[0], res.Nodes)
	// Pretend both inputs were sorted: cost must strictly drop.
	for _, ns := range res.Nodes {
		ns.LeftSorted = true
		ns.RightSorted = true
	}
	noSort := e.CostResult(p.Roots[0], res.Nodes)
	if noSort >= withSort {
		t.Errorf("pre-sorted merge join (%.2f) should be cheaper than sorting (%.2f)", noSort, withSort)
	}
}

func TestEnginesRankPlansDifferently(t *testing.T) {
	// SQLite (weak hash join, strong index loops) and EngineM (strong hash
	// join) should price a hash-heavy plan differently relative to an
	// index-loop plan, which is why Neo learns per-engine policies.
	db := imdb(t)
	q := query.New("mkt",
		[]string{"movie_keyword", "title"},
		[]query.JoinPredicate{{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"}},
		nil)
	hash := &plan.Plan{Query: q, Roots: []*plan.Node{
		plan.Join2(plan.HashJoin, plan.Leaf("movie_keyword", plan.TableScan), plan.Leaf("title", plan.TableScan)),
	}}
	inl := &plan.Plan{Query: q, Roots: []*plan.Node{
		plan.Join2(plan.LoopJoin, plan.Leaf("movie_keyword", plan.TableScan), plan.Leaf("title", plan.IndexScan)),
	}}
	ratio := func(prof Profile) float64 {
		e := New(prof, db)
		hres, _ := e.Executor().Execute(hash)
		ires, _ := e.Executor().Execute(inl)
		return e.CostResult(hash.Roots[0], hres.Nodes) / e.CostResult(inl.Roots[0], ires.Nodes)
	}
	sqliteRatio := ratio(SQLiteProfile())
	mRatio := ratio(EngineMProfile())
	if sqliteRatio <= mRatio {
		t.Errorf("hash/loop cost ratio should be higher on sqlite (%.2f) than engine-m (%.2f)", sqliteRatio, mRatio)
	}
}

func TestCostResultHandlesMissingStats(t *testing.T) {
	e := New(PostgreSQLProfile(), imdb(t))
	root := plan.Leaf("title", plan.TableScan)
	if got := e.CostResult(root, map[*plan.Node]*executor.NodeStats{}); got < 0 {
		t.Errorf("cost should not be negative")
	}
}

// TestSimulateCommitMatchesExecute pins the contract the concurrent episode
// pipeline relies on: Simulate+Commit must be exactly Execute, including the
// noise stream and the execution accounting, so committing fanned-out
// simulations in order reproduces serial execution bit for bit.
func TestSimulateCommitMatchesExecute(t *testing.T) {
	db := imdb(t)
	q := loveQuery()
	p := goodPlan(q)
	direct := New(PostgreSQLProfile(), db)
	split := New(PostgreSQLProfile(), db)
	for i := 0; i < 5; i++ {
		dLat, _, err := direct.Execute(p)
		if err != nil {
			t.Fatal(err)
		}
		base, _, err := split.Simulate(p)
		if err != nil {
			t.Fatal(err)
		}
		if sLat := split.Commit(base); sLat != dLat {
			t.Errorf("iteration %d: Simulate+Commit = %v, Execute = %v", i, sLat, dLat)
		}
	}
	if direct.Executions() != split.Executions() {
		t.Errorf("execution accounting differs: %d vs %d", direct.Executions(), split.Executions())
	}
	if direct.SimulatedTimeMS() != split.SimulatedTimeMS() {
		t.Errorf("simulated time differs: %v vs %v", direct.SimulatedTimeMS(), split.SimulatedTimeMS())
	}
	// Simulate alone must not touch the accounting or the noise stream.
	before := direct.Executions()
	if _, _, err := direct.Simulate(p); err != nil {
		t.Fatal(err)
	}
	if direct.Executions() != before {
		t.Errorf("Simulate must not count as an execution")
	}
}

// fixedBackend is a measured test double: Run returns a canned latency.
type fixedBackend struct{ lat float64 }

func (f *fixedBackend) Name() string   { return "fixed" }
func (f *fixedBackend) Measured() bool { return true }
func (f *fixedBackend) Run(p *plan.Plan) (float64, *executor.Result, error) {
	return f.lat, &executor.Result{}, nil
}

func TestCommitBypassesNoiseForMeasuredBackends(t *testing.T) {
	// A measured backend's latencies are real: Commit must return them
	// unchanged and must not consume the engine's noise stream, so a sim
	// engine created with the same profile keeps its exact noise sequence
	// regardless of interleaved measured commits.
	prof := PostgreSQLProfile()
	if prof.NoiseFraction == 0 {
		t.Fatal("test needs a noisy profile")
	}
	measured := NewWithBackend(prof, &fixedBackend{lat: 42.5})
	for i := 0; i < 8; i++ {
		base, _, err := measured.Simulate(nil)
		if err != nil {
			t.Fatal(err)
		}
		if lat := measured.Commit(base); lat != 42.5 {
			t.Fatalf("iteration %d: Commit perturbed a measured latency: %v", i, lat)
		}
	}
	if measured.Executions() != 8 {
		t.Errorf("measured commits must still count executions: %d", measured.Executions())
	}

	// Two sim engines, one interleaving measured-engine traffic: identical
	// noise draws (the measured engine has its own rng, and measured commits
	// would not draw from it anyway).
	db := imdb(t)
	q := loveQuery()
	p := goodPlan(q)
	ref := New(prof, db)
	mixed := New(prof, db)
	for i := 0; i < 5; i++ {
		rLat, _, err := ref.Execute(p)
		if err != nil {
			t.Fatal(err)
		}
		measured.Commit(42.5)
		mLat, _, err := mixed.Execute(p)
		if err != nil {
			t.Fatal(err)
		}
		if rLat != mLat {
			t.Errorf("iteration %d: noise streams diverged: %v vs %v", i, rLat, mLat)
		}
	}

	// DiskProfile is the measured backend's profile: zero noise by
	// construction, resolvable by name, absent from the sim profile list.
	dp, err := ProfileByName("disk")
	if err != nil {
		t.Fatal(err)
	}
	if dp.NoiseFraction != 0 {
		t.Errorf("disk profile must be noise-free: %v", dp.NoiseFraction)
	}
	for _, p := range Profiles() {
		if p.Name == "disk" {
			t.Errorf("Profiles() must list only the simulated engines")
		}
	}
}
