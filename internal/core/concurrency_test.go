package core

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"neo/internal/plan"
	"neo/internal/query"
	"neo/internal/valuenet"
)

// TestNewFillsOnlyZeroFields is the regression test for the constructor bug
// where any Config with SearchExpansions == 0 was replaced wholesale by
// DefaultConfig, silently discarding the caller's seed, cost function,
// network architecture and training hyperparameters.
func TestNewFillsOnlyZeroFields(t *testing.T) {
	rig := newRig(t, "postgres")
	custom := valuenet.Config{
		QueryLayers:  []int{8},
		TreeChannels: []int{8, 8},
		HeadLayers:   []int{8},
		LearningRate: 5e-4,
		UseLayerNorm: false,
		Seed:         99,
	}
	cfg := Config{
		ValueNet:    custom,
		TrainEpochs: 3,
		Cost:        RelativeCost,
		Seed:        1234,
		// SearchExpansions, BatchSize and Workers are left zero on purpose;
		// MaxTrainSamples zero means "no cap" and must survive as zero.
	}
	n := New(rig.eng, rig.feat, cfg)
	got := n.Config
	if got.Seed != 1234 {
		t.Errorf("Seed = %d, want the caller's 1234", got.Seed)
	}
	if got.Cost != RelativeCost {
		t.Errorf("Cost = %v, want the caller's RelativeCost", got.Cost)
	}
	if got.TrainEpochs != 3 {
		t.Errorf("TrainEpochs = %d, want the caller's 3", got.TrainEpochs)
	}
	if len(got.ValueNet.QueryLayers) != 1 || got.ValueNet.QueryLayers[0] != 8 || got.ValueNet.Seed != 99 {
		t.Errorf("ValueNet = %+v, want the caller's custom architecture", got.ValueNet)
	}
	if got.MaxTrainSamples != 0 {
		t.Errorf("MaxTrainSamples = %d, want 0 (zero meaningfully disables the cap)", got.MaxTrainSamples)
	}
	def := DefaultConfig()
	if got.SearchExpansions != def.SearchExpansions {
		t.Errorf("SearchExpansions = %d, want default %d", got.SearchExpansions, def.SearchExpansions)
	}
	if got.BatchSize != def.BatchSize {
		t.Errorf("BatchSize = %d, want default %d", got.BatchSize, def.BatchSize)
	}
	if got.Workers != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers = %d, want GOMAXPROCS default %d", got.Workers, runtime.GOMAXPROCS(0))
	}
	serial := New(rig.eng, rig.feat, Config{Workers: -1})
	if serial.Config.Workers != 1 {
		t.Errorf("negative Workers should normalize to serial, got %d", serial.Config.Workers)
	}
}

// TestConstructionStatesSiblingJoinOrder pins the ordering contract of the
// construction-state sort: equal-size sibling joins are applied in walk
// order (left subtree first), so training targets are deterministic.
func TestConstructionStatesSiblingJoinOrder(t *testing.T) {
	q := query.New("q", []string{"a", "b", "c", "d"},
		[]query.JoinPredicate{
			{LeftTable: "a", LeftColumn: "x", RightTable: "b", RightColumn: "x"},
			{LeftTable: "c", LeftColumn: "y", RightTable: "d", RightColumn: "y"},
			{LeftTable: "b", LeftColumn: "z", RightTable: "c", RightColumn: "z"},
		}, nil)
	// ((a ⋈ b) ⋈ (c ⋈ d)): the two inner joins have equal subtree size.
	complete := &plan.Plan{Query: q, Roots: []*plan.Node{
		plan.Join2(plan.HashJoin,
			plan.Join2(plan.MergeJoin, plan.Leaf("a", plan.TableScan), plan.Leaf("b", plan.TableScan)),
			plan.Join2(plan.MergeJoin, plan.Leaf("c", plan.TableScan), plan.Leaf("d", plan.TableScan))),
	}}
	states := constructionStates(complete)
	// initial + leaves + 3 joins = 5 states.
	if len(states) != 5 {
		t.Fatalf("expected 5 construction states, got %d", len(states))
	}
	// After the leaves state, the left sibling (a ⋈ b) must be applied
	// before the right sibling (c ⋈ d).
	afterFirstJoin := states[2]
	if len(afterFirstJoin.Roots) != 3 {
		t.Fatalf("state after first join should be a 3-root forest, got %s", afterFirstJoin)
	}
	foundAB := false
	for _, r := range afterFirstJoin.Roots {
		if !r.IsLeaf() {
			tables := r.Tables()
			if len(tables) == 2 && ((tables[0] == "a" && tables[1] == "b") || (tables[0] == "b" && tables[1] == "a")) {
				foundAB = true
			}
		}
	}
	if !foundAB {
		t.Errorf("left sibling join (a ⋈ b) should be applied first, state: %s", afterFirstJoin)
	}
	for i, s := range states {
		if !s.IsSubplanOf(complete) {
			t.Errorf("state %d (%s) is not a subplan of the complete plan", i, s)
		}
	}
	if states[len(states)-1].Signature() != complete.Signature() {
		t.Errorf("final state should equal the complete plan")
	}
}

// bootstrapRig builds a rig and bootstraps it from the expert; used in pairs
// by the determinism tests (two independently built rigs are bit-identical
// for a fixed seed).
func bootstrapRig(t *testing.T) (*testRig, []*query.Query) {
	t.Helper()
	rig := newRig(t, "postgres")
	train, _ := rig.wl.Split(0.8, 1)
	if err := rig.neo.Bootstrap(train, rig.expertFunc()); err != nil {
		t.Fatal(err)
	}
	return rig, train
}

// TestRunEpisodeParallelMatchesSerial asserts the pipeline's determinism
// contract: an 8-worker episode produces bit-identical EpisodeStats — and
// therefore identical downstream training — to the serial path.
func TestRunEpisodeParallelMatchesSerial(t *testing.T) {
	serialRig, serialTrain := bootstrapRig(t)
	parallelRig, parallelTrain := bootstrapRig(t)

	for ep := 1; ep <= 2; ep++ {
		ss, err := serialRig.neo.RunEpisodeParallel(ep, serialTrain, 1)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := parallelRig.neo.RunEpisodeParallel(ep, parallelTrain, 8)
		if err != nil {
			t.Fatal(err)
		}
		if ss.TotalLatency != ps.TotalLatency {
			t.Errorf("episode %d: TotalLatency differs: serial %v, parallel %v", ep, ss.TotalLatency, ps.TotalLatency)
		}
		if ss.NormalizedLatency != ps.NormalizedLatency {
			t.Errorf("episode %d: NormalizedLatency differs: serial %v, parallel %v", ep, ss.NormalizedLatency, ps.NormalizedLatency)
		}
		if ss.TrainLoss != ps.TrainLoss {
			t.Errorf("episode %d: TrainLoss differs: serial %v, parallel %v", ep, ss.TrainLoss, ps.TrainLoss)
		}
		if len(ss.QueryLatencies) != len(ps.QueryLatencies) {
			t.Fatalf("episode %d: latency map sizes differ", ep)
		}
		for id, lat := range ss.QueryLatencies {
			if ps.QueryLatencies[id] != lat {
				t.Errorf("episode %d query %s: latency differs: serial %v, parallel %v", ep, id, lat, ps.QueryLatencies[id])
			}
		}
	}
	if serialRig.neo.Experience.Len() != parallelRig.neo.Experience.Len() {
		t.Errorf("experience sizes diverged: serial %d, parallel %d",
			serialRig.neo.Experience.Len(), parallelRig.neo.Experience.Len())
	}
}

// TestEvaluateParallelMatchesSerial asserts that parallel evaluation returns
// identical per-query plans and latencies to the serial path.
func TestEvaluateParallelMatchesSerial(t *testing.T) {
	serialRig, serialTrain := bootstrapRig(t)
	parallelRig, parallelTrain := bootstrapRig(t)

	sTotal, sPer, err := serialRig.neo.EvaluateParallel(serialTrain, 1)
	if err != nil {
		t.Fatal(err)
	}
	pTotal, pPer, err := parallelRig.neo.EvaluateParallel(parallelTrain, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sTotal != pTotal {
		t.Errorf("total latency differs: serial %v, parallel %v", sTotal, pTotal)
	}
	for id, lat := range sPer {
		if pPer[id] != lat {
			t.Errorf("query %s: latency differs: serial %v, parallel %v", id, lat, pPer[id])
		}
	}
	// The chosen plans themselves must match query by query.
	for _, i := range []int{0, 1, 2} {
		sp, _, err := serialRig.neo.Optimize(serialTrain[i])
		if err != nil {
			t.Fatal(err)
		}
		pp, _, err := parallelRig.neo.Optimize(parallelTrain[i])
		if err != nil {
			t.Fatal(err)
		}
		if sp.Signature() != pp.Signature() {
			t.Errorf("query %s: plans differ across serial/parallel evaluation", serialTrain[i].ID)
		}
	}
}

// TestRetrainAsyncDoubleBuffering checks the snapshot/swap lifecycle: while
// a background retraining round runs, searches serve the old snapshot;
// after the swap the version moves and the old snapshot still scores with
// its original weights. Run with -race, this also exercises concurrent
// planning + baseline writes against the training round.
func TestRetrainAsyncDoubleBuffering(t *testing.T) {
	rig, train := bootstrapRig(t)
	n := rig.neo

	versionBefore := n.NetVersion()
	snapBefore := n.Snapshot()
	probe := train[0]
	probePlan, _, err := n.Optimize(probe)
	if err != nil {
		t.Fatal(err)
	}
	qEnc := n.encodeQuery(probe)
	pEnc := n.Featurizer.EncodePlan(probePlan)
	predBefore := snapBefore.Predict(qEnc, pEnc)

	// Grow the experience so the retraining round has new signal.
	if _, err := n.RunEpisode(1, train); err != nil {
		t.Fatal(err)
	}

	done := n.RetrainAsync()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				for _, q := range train[:3] {
					if _, _, err := n.Optimize(q); err != nil {
						t.Errorf("concurrent Optimize: %v", err)
						return
					}
					n.SetBaseline(q.ID, float64(100+w))
					n.Baseline(q.ID)
					n.PredictNormalized(q, probePlan)
				}
			}
		}(w)
	}
	wg.Wait()
	loss := <-done
	if math.IsNaN(loss) || loss < 0 {
		t.Errorf("async retrain loss should be a non-negative number, got %v", loss)
	}
	if got := n.NetVersion(); got <= versionBefore+1 {
		// Bootstrap publishes version 1; RunEpisode and RetrainAsync add one
		// swap each.
		t.Errorf("NetVersion = %d, want > %d after episode + async retrain", got, versionBefore+1)
	}
	if n.Snapshot() == snapBefore {
		t.Errorf("snapshot should have been swapped")
	}
	// The old snapshot is immutable: it must still score with the weights it
	// was frozen with.
	if got := snapBefore.Predict(qEnc, pEnc); got != predBefore {
		t.Errorf("old snapshot's prediction changed after retraining: %v -> %v", predBefore, got)
	}
}

// TestConcurrentBaselineAccess hammers SetBaseline/Baseline/cost from many
// goroutines; meaningful under -race (the baseline map used to be
// unguarded).
func TestConcurrentBaselineAccess(t *testing.T) {
	rig := newRig(t, "postgres")
	n := rig.neo
	q := rig.wl.Queries[0]
	entry := Entry{Query: q, Latency: 50}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n.SetBaseline(q.ID, float64(w*200+i+1))
				n.Baseline(q.ID)
				n.cost(entry)
			}
		}(w)
	}
	wg.Wait()
	if _, ok := n.Baseline(q.ID); !ok {
		t.Errorf("baseline should be set after concurrent writes")
	}
}
