package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// detrangeCheck flags ranging over a map in a determinism-critical package
// when the loop body's effects depend on iteration order. Go randomizes map
// iteration, so such a loop makes identically-seeded runs differ — the exact
// class of bug PR 2 fixed twice (construction-state forests and stats
// TopValues enumerated in map order, randomizing gradient accumulation and
// expert plans per build).
//
// Order-dependent effects are: appending to anything declared outside the
// loop (element order becomes iteration order), compound-assigning floats,
// strings or complex values outside the loop (float addition does not
// commute bitwise; concatenation does not commute at all), writing to an
// index not keyed by the loop's own key variable, returning a non-constant
// value from inside the loop (whichever element came up first wins), and
// calling out to anything that is not provably order-insensitive. Copying
// one map into another keyed by the range key, integer counting, boolean
// flagging and deletes keyed by the range key stay silent: their result is
// the same in every order.
//
// The fix is to iterate sorted keys (ranging over the sorted key slice no
// longer triggers the check), or — for genuinely order-insensitive bodies
// the heuristics cannot see through — a //neo:lint-ok detrange suppression
// naming the reason.
var detrangeCheck = &Check{
	Name: "detrange",
	Doc:  "map iteration with order-dependent effects in a determinism-critical package",
	Run:  runDetrange,
}

func runDetrange(p *Pass) {
	if !p.inDeterminismPkg() {
		return
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			ast.Inspect(fn.Body, func(m ast.Node) bool {
				rng, ok := m.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := p.Pkg.Info.Types[rng.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if reason := orderDependentEffect(p, fn.Body, rng); reason != "" {
					p.Reportf(rng.Pos(), "map iteration order is random and this loop %s; iterate sorted keys instead", reason)
				}
				return true
			})
			return false
		})
	}
}

// orderDependentEffect returns a description of the first order-dependent
// effect found in the range body, or "" when every effect it can see is
// order-insensitive. fnBody is the enclosing function body, consulted to
// recognize the collect-then-sort idiom.
func orderDependentEffect(p *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) string {
	keyObj := rangeVarObj(p, rng.Key)
	var reason string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch st := n.(type) {
		case *ast.RangeStmt:
			// A nested map range is reported on its own; its body's effects
			// are its problem, but they are also this loop's: keep walking.
			return true
		case *ast.AssignStmt:
			if r := assignEffect(p, fnBody, rng, keyObj, st); r != "" {
				reason = r
				return false
			}
		case *ast.IncDecStmt:
			if declaredOutside(p, rng, rootIdent(st.X)) && isOrderSensitiveScalar(p.typeOf(st.X)) {
				reason = "increments " + exprString(st.X) + " declared outside it"
				return false
			}
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if !isConstExpr(p, res) {
					reason = "returns a non-constant value from inside the iteration"
					return false
				}
			}
		case *ast.CallExpr:
			if r := callEffect(p, rng, keyObj, st); r != "" {
				reason = r
				return false
			}
		case *ast.GoStmt, *ast.SendStmt:
			reason = "spawns or communicates from inside the iteration"
			return false
		}
		return true
	})
	return reason
}

// typeOf is a nil-tolerant Info.Types lookup.
func (p *Pass) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// rangeVarObj resolves the key or value variable of a range statement.
func rangeVarObj(p *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := p.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Uses[id]
}

// assignEffect classifies one assignment inside the range body.
func assignEffect(p *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, keyObj types.Object, st *ast.AssignStmt) string {
	// Compound assignment to something declared outside the loop is a
	// reduction; only bitwise-commutative element types are order-safe.
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range st.Lhs {
			if declaredOutside(p, rng, rootIdent(lhs)) && isOrderSensitiveScalar(p.typeOf(lhs)) {
				return "accumulates into " + exprString(lhs) + " declared outside it"
			}
		}
		return ""
	case token.ASSIGN:
	default: // := defines loop-local state; &=, |= etc. are commutative
		return ""
	}
	for i, lhs := range st.Lhs {
		switch l := lhs.(type) {
		case *ast.IndexExpr:
			// m[k] = v keyed by the loop's own key writes disjoint cells —
			// order-free. Any other index makes the last iteration win.
			if declaredOutside(p, rng, rootIdent(l.X)) && !isRangeKey(p, keyObj, l.Index) {
				return "writes " + exprString(l.X) + "[...] with an index that is not the range key"
			}
		case *ast.Ident, *ast.SelectorExpr:
			if id, ok := l.(*ast.Ident); ok && id.Name == "_" {
				continue // discarding a value has no effect at all
			}
			if !declaredOutside(p, rng, rootIdent(l)) {
				continue
			}
			// Plain overwrite of an outer variable: last iteration wins,
			// unless the assigned value ignores the iteration entirely.
			if i < len(st.Rhs) && dependsOnIteration(p, rng, st.Rhs[i]) {
				if call, ok := st.Rhs[i].(*ast.CallExpr); ok && isAppendTo(call, l) {
					// The canonical collect-then-sort idiom: appending in map
					// order is fine when the slice is sorted before use.
					if sortedAfterLoop(p, fnBody, rng, l) {
						continue
					}
					return "appends to " + exprString(l) + " declared outside it"
				}
				return "overwrites " + exprString(l) + " with an iteration-dependent value (last iteration wins)"
			}
		}
	}
	return ""
}

// callEffect classifies one call inside the range body: anything with
// side effects the check cannot see through is treated as order-dependent.
func callEffect(p *Pass, rng *ast.RangeStmt, keyObj types.Object, call *ast.CallExpr) string {
	// Type conversions are pure.
	if tv, ok := p.Pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return ""
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		if obj := p.Pkg.Info.Uses[fn]; obj != nil {
			if b, ok := obj.(*types.Builtin); ok {
				return builtinEffect(p, rng, keyObj, b.Name(), call)
			}
			if _, ok := obj.(*types.TypeName); ok {
				return ""
			}
		}
	case *ast.SelectorExpr:
		if sel := p.Pkg.Info.Selections[fn]; sel == nil {
			// Package-qualified call: allow the provably order-insensitive
			// standard helpers.
			if pkgName, ok := fn.X.(*ast.Ident); ok {
				if obj, ok := p.Pkg.Info.Uses[pkgName].(*types.PkgName); ok {
					switch obj.Imported().Path() {
					case "math", "strings", "strconv", "unicode", "errors":
						return ""
					case "fmt":
						if fn.Sel.Name == "Sprintf" || fn.Sel.Name == "Errorf" || fn.Sel.Name == "Sprint" {
							return ""
						}
					}
				}
			}
		}
	}
	return "calls out (" + exprString(call.Fun) + "), whose effects may observe iteration order"
}

// builtinEffect classifies a builtin call. append is handled at the
// assignment it feeds; a bare append call (result discarded) is pointless
// but harmless. delete keyed by the range key is the idiomatic
// delete-while-iterating pattern and is order-free; any other delete
// depends on what was already removed.
func builtinEffect(p *Pass, rng *ast.RangeStmt, keyObj types.Object, name string, call *ast.CallExpr) string {
	switch name {
	case "delete":
		if len(call.Args) == 2 && !isRangeKey(p, keyObj, call.Args[1]) {
			return "deletes a key other than the range key mid-iteration"
		}
	case "print", "println":
		return "prints from inside the iteration"
	}
	return ""
}

// isAppendTo reports whether call is append(dst, ...) growing dst.
func isAppendTo(call *ast.CallExpr, dst ast.Expr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return false
	}
	return exprString(call.Args[0]) == exprString(dst)
}

// sortedAfterLoop reports whether the enclosing function sorts the given
// slice after the range loop ends: a call to any sort.* or slices.* helper
// whose first argument is the same expression, positioned after the loop.
// That is the canonical deterministic-iteration idiom — collect the keys in
// whatever order the map yields them, then impose a total order — and it
// must not be flagged, or the check would reject its own advice.
func sortedAfterLoop(p *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, target ast.Expr) bool {
	if fnBody == nil {
		return false
	}
	want := exprString(target)
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		fn, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgIdent, ok := fn.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := p.Pkg.Info.Uses[pkgIdent].(*types.PkgName)
		if !ok {
			return true
		}
		switch pn.Imported().Path() {
		case "sort", "slices":
			if exprString(call.Args[0]) == want {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// isRangeKey reports whether e is exactly the loop's key variable.
func isRangeKey(p *Pass, keyObj types.Object, e ast.Expr) bool {
	if keyObj == nil {
		return false
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	return p.Pkg.Info.Uses[id] == keyObj || p.Pkg.Info.Defs[id] == keyObj
}

// rootIdent returns the base identifier of an lvalue chain (x, x.f, x[i].g).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether the identifier's object is declared
// outside the range statement (package scope, an enclosing function, or an
// enclosing block). Identifiers the checker cannot resolve are treated as
// outside — the conservative direction.
func declaredOutside(p *Pass, rng *ast.RangeStmt, id *ast.Ident) bool {
	if id == nil {
		return false
	}
	obj := p.Pkg.Info.Uses[id]
	if obj == nil {
		obj = p.Pkg.Info.Defs[id]
	}
	if obj == nil {
		return true
	}
	pos := obj.Pos()
	if !pos.IsValid() {
		return true
	}
	return pos < rng.Pos() || pos > rng.End()
}

// dependsOnIteration reports whether the expression mentions the loop's key
// or value variable (directly or through any sub-expression).
func dependsOnIteration(p *Pass, rng *ast.RangeStmt, e ast.Expr) bool {
	depends := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || depends {
			return !depends
		}
		if obj := p.Pkg.Info.Uses[id]; obj != nil && obj.Pos().IsValid() &&
			obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End() {
			depends = true
			return false
		}
		return true
	})
	return depends
}

// isConstExpr reports whether the expression is a compile-time constant.
func isConstExpr(p *Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}

// isOrderSensitiveScalar reports whether compound assignment on the type is
// sensitive to operand order at the bit level: floats (rounding), complex,
// and strings (concatenation). Integer addition is exact and commutative.
func isOrderSensitiveScalar(t types.Type) bool {
	if t == nil {
		return true
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return true
	}
	switch {
	case b.Info()&types.IsFloat != 0, b.Info()&types.IsComplex != 0, b.Info()&types.IsString != 0:
		return true
	}
	return false
}
