package neo

import (
	"os"
	"testing"
	"time"
)

func smallSystem(t testing.TB, dataset, engineName string, enc Encoding) *System {
	t.Helper()
	sys, err := Open(Config{
		Dataset:          dataset,
		Engine:           engineName,
		Encoding:         enc,
		Scale:            0.15,
		Seed:             7,
		SearchExpansions: 32,
		Episodes:         1,
		ValueNet: &ValueNetConfig{
			QueryLayers:  []int{16, 8},
			TreeChannels: []int{8, 8},
			HeadLayers:   []int{8},
			LearningRate: 2e-3,
			UseLayerNorm: true,
			Seed:         3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestOpenDefaults(t *testing.T) {
	sys := smallSystem(t, "", "", Histogram)
	if sys.Config.Dataset != "imdb" || sys.Config.Engine != "postgres" {
		t.Errorf("defaults not applied: %+v", sys.Config)
	}
	if sys.DB == nil || sys.Catalog == nil || sys.Engine == nil || sys.Neo == nil {
		t.Fatalf("system is missing components")
	}
	if sys.Catalog.NumRelations() == 0 {
		t.Errorf("catalog should describe relations")
	}
}

func TestOpenRejectsUnknowns(t *testing.T) {
	if _, err := Open(Config{Dataset: "nope", Scale: 0.1}); err == nil {
		t.Errorf("unknown dataset should error")
	}
	if _, err := Open(Config{Engine: "db2", Scale: 0.1}); err == nil {
		t.Errorf("unknown engine should error")
	}
}

func TestEndToEndQuickstartFlow(t *testing.T) {
	sys := smallSystem(t, "imdb", "postgres", Histogram)
	wl, err := sys.GenerateWorkload(8)
	if err != nil {
		t.Fatal(err)
	}
	train, test := wl.Split(0.8, 1)
	if err := sys.Bootstrap(train); err != nil {
		t.Fatal(err)
	}
	stats, err := sys.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != sys.Config.Episodes {
		t.Errorf("expected %d episode stats, got %d", sys.Config.Episodes, len(stats))
	}
	for _, q := range test {
		neoLat, nativeLat, err := sys.Compare(q)
		if err != nil {
			t.Fatalf("Compare(%s): %v", q.ID, err)
		}
		if neoLat <= 0 || nativeLat <= 0 {
			t.Errorf("latencies should be positive: neo=%f native=%f", neoLat, nativeLat)
		}
	}
	// Expert and native plans are available and executable.
	q := test[0]
	ep, err := sys.ExpertPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Execute(ep); err != nil {
		t.Errorf("expert plan does not execute: %v", err)
	}
	card, err := sys.TrueCardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if card < 0 {
		t.Errorf("cardinality should be non-negative")
	}
}

func TestUnseenWorkload(t *testing.T) {
	sys := smallSystem(t, "imdb", "sqlite", OneHot)
	base, err := sys.GenerateWorkload(6)
	if err != nil {
		t.Fatal(err)
	}
	unseen, err := sys.GenerateUnseenWorkload(3, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(unseen.Queries) != 3 {
		t.Errorf("expected 3 unseen queries, got %d", len(unseen.Queries))
	}
}

func TestExperimentFacade(t *testing.T) {
	names := ExperimentNames()
	if len(names) == 0 {
		t.Fatalf("no experiments registered")
	}
	q := QuickExperiments()
	f := FullExperiments()
	if f.Episodes <= q.Episodes {
		t.Errorf("full config should use more episodes than quick")
	}
	// Building an env and running the cheapest experiment exercises the whole
	// facade path.
	cfg := q
	cfg.Scale = 0.15
	cfg.TrainQueries, cfg.TestQueries = 4, 2
	cfg.Episodes = 1
	cfg.Engines = []string{"postgres"}
	cfg.Workloads = []string{"job"}
	cfg.EmbeddingDim = 6
	env, err := Experiments(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunExperiment("table2", env)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "table2" || len(rep.Rows) == 0 {
		t.Errorf("report malformed: %+v", rep)
	}
}

func TestDiskEngineEndToEnd(t *testing.T) {
	dir := t.TempDir()
	sys, err := Open(Config{
		Dataset:          "imdb",
		Engine:           "disk",
		Encoding:         Histogram,
		Scale:            0.15,
		Seed:             7,
		SearchExpansions: 32,
		Episodes:         1,
		DataDir:          dir,
		BufferPoolMB:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if name := sys.Engine.Backend.Name(); name != "disk" {
		t.Fatalf("backend = %q, want disk", name)
	}
	if !sys.Engine.Backend.Measured() {
		t.Fatalf("disk backend must report measured latencies")
	}

	wl, err := sys.GenerateWorkload(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range wl.Queries {
		p, err := sys.ExpertPlan(q)
		if err != nil {
			t.Fatal(err)
		}
		lat, err := sys.Execute(p)
		if err != nil {
			t.Fatalf("Execute(%s): %v", q.ID, err)
		}
		if lat <= 0 {
			t.Errorf("%s: measured latency should be positive, got %g", q.ID, lat)
		}
	}
	st, ok := sys.StorageStats()
	if !ok {
		t.Fatalf("disk system should report storage stats")
	}
	if st.Misses == 0 || st.BytesRead == 0 {
		t.Errorf("execution should have read pages through the pool: %+v", st)
	}

	// A second Open over the same data directory reuses the heap files
	// instead of re-materializing.
	before := heapModTimes(t, dir)
	sys2, err := Open(Config{
		Dataset: "imdb", Engine: "disk", Encoding: Histogram,
		Scale: 0.15, Seed: 7, DataDir: dir, BufferPoolMB: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	for name, mod := range heapModTimes(t, dir) {
		if !mod.Equal(before[name]) {
			t.Errorf("%s was rewritten on reuse", name)
		}
	}

	// A mismatched data directory (different scale) is detected and
	// re-materialized in place rather than served stale.
	sys3, err := Open(Config{
		Dataset: "imdb", Engine: "disk", Encoding: Histogram,
		Scale: 0.25, Seed: 7, DataDir: dir, BufferPoolMB: 1,
	})
	if err != nil {
		t.Fatalf("stale data dir should be re-materialized, got %v", err)
	}
	defer sys3.Close()
	if sys3.DB.TotalRows() == sys.DB.TotalRows() {
		t.Fatalf("test needs distinct scales to detect staleness")
	}
}

func heapModTimes(t *testing.T, dir string) map[string]time.Time {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]time.Time)
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = info.ModTime()
	}
	if len(out) == 0 {
		t.Fatalf("no heap files in %s", dir)
	}
	return out
}

func TestNewQueryHelper(t *testing.T) {
	q := NewQuery("q", []string{"title"}, nil, nil)
	if q.ID != "q" || len(q.Relations) != 1 {
		t.Errorf("NewQuery malformed: %+v", q)
	}
}

func TestTPCHAndCorpSystems(t *testing.T) {
	for _, ds := range []string{"tpch", "corp"} {
		sys := smallSystem(t, ds, "engine-m", Histogram)
		wl, err := sys.GenerateWorkload(5)
		if err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		if len(wl.Queries) != 5 {
			t.Errorf("%s: expected 5 queries, got %d", ds, len(wl.Queries))
		}
		p, err := sys.NativePlan(wl.Queries[0])
		if err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		if _, err := sys.Execute(p); err != nil {
			t.Errorf("%s: native plan does not execute: %v", ds, err)
		}
	}
}

func TestPlanAllMatchesSequentialOptimize(t *testing.T) {
	sys := smallSystem(t, "imdb", "postgres", Histogram)
	wl, err := sys.GenerateWorkload(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Bootstrap(wl.Queries); err != nil {
		t.Fatal(err)
	}

	results := sys.PlanAll(wl.Queries, 4)
	if len(results) != len(wl.Queries) {
		t.Fatalf("PlanAll returned %d results, want %d", len(results), len(wl.Queries))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("PlanAll query %s: %v", wl.Queries[i].ID, r.Err)
		}
		if r.Query != wl.Queries[i] {
			t.Errorf("result %d out of order: got query %s", i, r.Query.ID)
		}
		if r.Plan == nil || !r.Plan.IsComplete() {
			t.Errorf("query %s: incomplete plan from PlanAll", wl.Queries[i].ID)
		}
		p, _, err := sys.Optimize(wl.Queries[i])
		if err != nil {
			t.Fatal(err)
		}
		if r.Plan.Signature() != p.Signature() {
			t.Errorf("query %s: concurrent plan differs from sequential plan", wl.Queries[i].ID)
		}
	}
	// Degenerate worker counts fall back to sane behaviour.
	if got := sys.PlanAll(wl.Queries[:1], 0); len(got) != 1 || got[0].Err != nil {
		t.Errorf("PlanAll with workers<=0 failed: %+v", got)
	}
	if got := sys.PlanAll(nil, 4); len(got) != 0 {
		t.Errorf("PlanAll(nil) returned %d results", len(got))
	}
}

// TestPlanCache exercises the signature-keyed plan cache: repeated queries
// skip the search, structurally identical queries under different IDs share
// an entry, and a retraining round (network swap) invalidates everything.
func TestPlanCache(t *testing.T) {
	sys := smallSystem(t, "imdb", "postgres", Histogram)
	wl, err := sys.GenerateWorkload(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Bootstrap(wl.Queries); err != nil {
		t.Fatal(err)
	}
	q := wl.Queries[0]

	p1, r1, err := sys.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	p2, r2, err := sys.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 || r1 != r2 {
		t.Errorf("second Optimize of the same query should be served from the cache")
	}
	st := sys.PlanCacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Errorf("cache stats after two lookups = %+v, want 1 hit / 1 miss / size 1", st)
	}

	// A structurally identical query under a different ID hits the cache and
	// gets the plan re-bound to its own identity.
	alias := NewQuery("alias-id", q.Relations, q.Joins, q.Predicates)
	p3, r3, err := sys.Optimize(alias)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Query != alias {
		t.Errorf("cached plan should be re-bound to the requesting query")
	}
	if p3.Signature() != p1.Signature() || r3.Plan != p3 {
		t.Errorf("re-bound plan should share the cached plan's structure")
	}
	if st = sys.PlanCacheStats(); st.Hits != 2 {
		t.Errorf("alias lookup should hit the cache: %+v", st)
	}

	// Retraining swaps the network; the next lookup must drop the cache.
	version := sys.Neo.NetVersion()
	sys.Neo.Retrain()
	if sys.Neo.NetVersion() != version+1 {
		t.Fatalf("Retrain should bump the network version")
	}
	p4, _, err := sys.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if p4 == p1 {
		t.Errorf("plan should be re-searched after a network swap")
	}
	if st = sys.PlanCacheStats(); st.Size != 1 || st.Version != version+1 {
		t.Errorf("cache should hold only the re-searched plan at the new version: %+v", st)
	}
}

// TestPlanAllWhileRetrainAsync exercises the double-buffered serving path
// under -race: concurrent PlanAll batches keep planning from the previous
// network snapshot while a background retraining round swaps in a new one.
func TestPlanAllWhileRetrainAsync(t *testing.T) {
	sys := smallSystem(t, "imdb", "postgres", Histogram)
	wl, err := sys.GenerateWorkload(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Bootstrap(wl.Queries); err != nil {
		t.Fatal(err)
	}
	done := sys.RetrainAsync()
	for i := 0; i < 3; i++ {
		for _, r := range sys.PlanAll(wl.Queries, 4) {
			if r.Err != nil {
				t.Fatalf("PlanAll during async retrain: %v", r.Err)
			}
			if r.Plan == nil || !r.Plan.IsComplete() {
				t.Fatalf("incomplete plan during async retrain")
			}
		}
	}
	if loss := <-done; loss <= 0 {
		t.Errorf("async retrain should report a positive loss, got %v", loss)
	}
	// After the swap, planning still works and the cache rebuilt itself.
	if _, _, err := sys.Optimize(wl.Queries[0]); err != nil {
		t.Fatal(err)
	}
	if st := sys.PlanCacheStats(); st.Version != sys.Neo.NetVersion() {
		t.Errorf("cache version %d should track the network version %d", st.Version, sys.Neo.NetVersion())
	}
}

// TestEvaluateDeterministicAcrossWorkers checks the facade-level promise
// that Config.Workers only changes wall-clock time, never results.
func TestEvaluateDeterministicAcrossWorkers(t *testing.T) {
	build := func(workers int) (*System, []*Query) {
		sys, err := Open(Config{
			Dataset: "imdb", Engine: "postgres", Encoding: Histogram,
			Scale: 0.15, Seed: 7, SearchExpansions: 32, Episodes: 1, Workers: workers,
			ValueNet: &ValueNetConfig{
				QueryLayers: []int{16, 8}, TreeChannels: []int{8, 8}, HeadLayers: []int{8},
				LearningRate: 2e-3, UseLayerNorm: true, Seed: 3,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		wl, err := sys.GenerateWorkload(8)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Bootstrap(wl.Queries[:5]); err != nil {
			t.Fatal(err)
		}
		return sys, wl.Queries[5:]
	}
	serialSys, serialTest := build(-1)
	parallelSys, parallelTest := build(8)
	sTotal, sPer, err := serialSys.Evaluate(serialTest)
	if err != nil {
		t.Fatal(err)
	}
	pTotal, pPer, err := parallelSys.Evaluate(parallelTest)
	if err != nil {
		t.Fatal(err)
	}
	if sTotal != pTotal {
		t.Errorf("Evaluate totals differ across worker counts: %v vs %v", sTotal, pTotal)
	}
	for id, lat := range sPer {
		if pPer[id] != lat {
			t.Errorf("query %s: latency differs across worker counts: %v vs %v", id, lat, pPer[id])
		}
	}
}
