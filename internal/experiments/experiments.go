package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"neo/internal/core"
	"neo/internal/embedding"
	"neo/internal/executor"
	"neo/internal/expert"
	"neo/internal/feature"
	"neo/internal/plan"
	"neo/internal/query"
	"neo/internal/search"
	"neo/internal/stats"
	"neo/internal/storage"
	"neo/internal/treeconv"
)

// Table2 reproduces Table 2: cosine similarity between keyword and genre
// row vectors versus the true cardinality of the corresponding two-predicate
// join query, for the keyword/genre pairs the paper lists.
func Table2(env *Env) (*Report, error) {
	rep := &Report{
		Name:   "table2",
		Title:  "Row-vector similarity vs. true cardinality (keyword × genre)",
		Header: []string{"keyword", "genre", "similarity", "cardinality"},
	}
	model := env.Embedding("job", true)
	exec := executor.New(env.DBs["job"])
	pairs := []struct{ keyword, genre string }{
		{"love", "romance"}, {"love", "action"}, {"love", "horror"},
		{"fight", "action"}, {"fight", "romance"}, {"fight", "horror"},
	}
	for _, pr := range pairs {
		sim := model.Similarity(
			embedding.TokenPrefix("keyword", "keyword")+pr.keyword,
			embedding.TokenPrefix("movie_info", "info")+pr.genre,
		)
		card, err := exec.Count(keywordGenreQuery(pr.keyword, pr.genre))
		if err != nil {
			return nil, err
		}
		rep.AddRow(pr.keyword, pr.genre, sim, fmt.Sprintf("%.0f", card))
	}
	rep.AddNote("paper shape: correlated pairs (love/romance, fight/action) have both higher similarity and higher cardinality")
	return rep, nil
}

// keywordGenreQuery builds the five-table query of Figure 8 for a given
// keyword and genre.
func keywordGenreQuery(keyword, genre string) *query.Query {
	return query.New("table2-"+keyword+"-"+genre,
		[]string{"title", "movie_keyword", "keyword", "movie_info", "info_type"},
		[]query.JoinPredicate{
			{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
			{LeftTable: "movie_keyword", LeftColumn: "keyword_id", RightTable: "keyword", RightColumn: "id"},
			{LeftTable: "movie_info", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
			{LeftTable: "movie_info", LeftColumn: "info_type_id", RightTable: "info_type", RightColumn: "id"},
		},
		[]query.Predicate{
			{Table: "info_type", Column: "id", Op: query.Eq, Value: storage.IntValue(3)},
			{Table: "keyword", Column: "keyword", Op: query.Like, Value: storage.StringValue(keyword)},
			{Table: "movie_info", Column: "info", Op: query.Like, Value: storage.StringValue(genre)},
		})
}

// Figure9 reproduces Figure 9: Neo's relative performance (total test-set
// latency divided by the native optimizer's) per engine and workload, after
// the configured number of training episodes with the R-Vector encoding.
func Figure9(env *Env) (*Report, error) {
	rep := &Report{
		Name:   "figure9",
		Title:  "Relative performance vs. native optimizer (lower is better)",
		Header: []string{"engine", "workload", "neo/native", "pg-plans/native"},
	}
	for _, engName := range env.Config.engines() {
		for _, wlName := range env.Config.workloads() {
			run, err := env.TrainNeo(wlName, engName, feature.RVector, core.WorkloadCost, false)
			if err != nil {
				return nil, err
			}
			rel, err := run.EvaluateRelative()
			if err != nil {
				return nil, err
			}
			pgRel := run.PGTestLatency / maxFloat(run.NativeTestLatency, 1e-9)
			rep.AddRow(engName, wlName, rel, pgRel)
		}
	}
	rep.AddNote("paper shape: Neo at or below 1.0 on JOB/Corp for every engine; TPC-H closer to (or slightly above) 1.0 on the commercial engines")
	return rep, nil
}

// Figure10 reproduces the learning curves of Figure 10: normalised test-set
// latency (relative to the native optimizer) per training episode, plus the
// constant "PostgreSQL plans on this engine" reference line.
func Figure10(env *Env) (*Report, error) {
	rep := &Report{
		Name:   "figure10",
		Title:  "Learning curves: normalised latency vs. training episode",
		Header: []string{"engine", "workload", "episode", "neo/native", "pg/native"},
	}
	for _, engName := range env.Config.engines() {
		for _, wlName := range env.Config.workloads() {
			run, err := env.TrainNeo(wlName, engName, feature.RVector, core.WorkloadCost, true)
			if err != nil {
				return nil, err
			}
			pgRel := run.PGTestLatency / maxFloat(run.NativeTestLatency, 1e-9)
			for i, v := range run.Curve {
				rep.AddRow(engName, wlName, i+1, v, pgRel)
			}
		}
	}
	rep.AddNote("paper shape: curves start above 1.0 (or above the pg line), drop sharply within the first episodes, then flatten")
	return rep, nil
}

// Figure11 reproduces Figure 11: the training cost (value-network training
// time and cumulative query-execution time) until Neo first matches (a) the
// PostgreSQL plans executed on the engine and (b) the native optimizer.
func Figure11(env *Env) (*Report, error) {
	rep := &Report{
		Name:   "figure11",
		Title:  "Training cost to reach the PostgreSQL-plan and native-optimizer milestones",
		Header: []string{"engine", "milestone", "episodes", "nn_time_s", "exec_time_s(simulated)"},
	}
	wlName := "job"
	for _, engName := range env.Config.engines() {
		run, err := env.TrainNeo(wlName, engName, feature.RVector, core.WorkloadCost, true)
		if err != nil {
			return nil, err
		}
		pgRel := run.PGTestLatency / maxFloat(run.NativeTestLatency, 1e-9)
		pgEp := firstAtOrBelow(run.Curve, pgRel)
		natEp := firstAtOrBelow(run.Curve, 1.0)
		nn := run.Neo.TrainingTime().Seconds()
		exec := run.Engine.SimulatedTimeMS() / 1000
		addMilestone := func(name string, ep int) {
			if ep < 0 {
				rep.AddRow(engName, name, "not reached", fmt.Sprintf("%.1f", nn), fmt.Sprintf("%.1f", exec))
				return
			}
			frac := float64(ep) / float64(len(run.Curve))
			rep.AddRow(engName, name, ep, fmt.Sprintf("%.1f", nn*frac), fmt.Sprintf("%.1f", exec*frac))
		}
		addMilestone("postgres-plans", pgEp)
		addMilestone("native-optimizer", natEp)
	}
	rep.AddNote("paper shape: matching PostgreSQL takes far less time than matching the commercial optimizers; execution time dominates NN time")
	return rep, nil
}

func firstAtOrBelow(curve []float64, threshold float64) int {
	for i, v := range curve {
		if v <= threshold {
			return i + 1
		}
	}
	return -1
}

// Figure12 reproduces Figure 12: the featurization ablation (R-Vector,
// R-Vector without joins, Histogram, 1-Hot) on the JOB workload.
func Figure12(env *Env) (*Report, error) {
	rep := &Report{
		Name:   "figure12",
		Title:  "Featurization ablation on JOB (relative to native optimizer)",
		Header: []string{"engine", "encoding", "neo/native"},
	}
	engines := env.Config.engines()
	for _, engName := range engines {
		for _, enc := range feature.AllEncodings() {
			run, err := env.TrainNeo("job", engName, enc, core.WorkloadCost, false)
			if err != nil {
				return nil, err
			}
			rel, err := run.EvaluateRelative()
			if err != nil {
				return nil, err
			}
			rep.AddRow(engName, string(enc), rel)
		}
	}
	rep.AddNote("paper shape: R-Vector best, R-Vector(no joins) close behind, then Histogram, then 1-Hot")
	return rep, nil
}

// Figure13 reproduces Figure 13: generalisation to the entirely-new Ext-JOB
// queries, before and after five additional training episodes that include
// them.
func Figure13(env *Env) (*Report, error) {
	rep := &Report{
		Name:   "figure13",
		Title:  "Performance on entirely new queries (Ext-JOB), before and after 5 extra episodes",
		Header: []string{"engine", "encoding", "before(neo/native)", "after(neo/native)"},
	}
	engName := env.Config.engines()[0]
	ext := env.ExtJOB.Queries
	for _, enc := range feature.AllEncodings() {
		run, err := env.TrainNeo("job", engName, enc, core.WorkloadCost, false)
		if err != nil {
			return nil, err
		}
		// Native baseline on the Ext-JOB queries.
		var nativeTotal float64
		for _, q := range ext {
			p, _, err := run.Native.Optimize(q)
			if err != nil {
				return nil, err
			}
			lat, _, err := run.Engine.Execute(p)
			if err != nil {
				return nil, err
			}
			nativeTotal += lat
		}
		beforeTotal, _, err := run.Neo.Evaluate(ext)
		if err != nil {
			return nil, err
		}
		// Five additional episodes over train ∪ ext (learning the new queries).
		combined := append(append([]*query.Query{}, run.Train...), ext...)
		for ep := 1; ep <= 5; ep++ {
			if _, err := run.Neo.RunEpisode(env.Config.Episodes+ep, combined); err != nil {
				return nil, err
			}
		}
		afterTotal, _, err := run.Neo.Evaluate(ext)
		if err != nil {
			return nil, err
		}
		rep.AddRow(engName, string(enc), beforeTotal/maxFloat(nativeTotal, 1e-9), afterTotal/maxFloat(nativeTotal, 1e-9))
	}
	rep.AddNote("paper shape: R-Vector generalises best before refinement; all encodings improve markedly after seeing the new queries a few times")
	return rep, nil
}

// Figure14 reproduces the robustness experiment of Figure 14: two value
// models are trained with an extra per-node cardinality feature (PostgreSQL
// histogram estimates vs. true cardinalities); the spread of network outputs
// under injected cardinality error (0, 2 and 5 orders of magnitude) is then
// measured separately for plans with at most 3 joins and with more than 3
// joins.
func Figure14(env *Env) (*Report, error) {
	rep := &Report{
		Name:   "figure14",
		Title:  "Robustness to cardinality-estimation error (std-dev of value-network output shift)",
		Header: []string{"cardinality source", "joins", "error(orders)", "output shift (stddev)"},
	}
	wlName := "job"
	engName := env.Config.engines()[0]
	db := env.DBs[wlName]
	st := env.Stats[wlName]
	exec := executor.New(db)

	sources := []struct {
		name string
		src  feature.CardinalitySource
	}{
		{"postgres-estimate", &feature.HistogramCardinality{Stats: st}},
		{"true-cardinality", &feature.TrueCardinality{Counter: exec}},
	}
	for _, source := range sources {
		eng, err := env.Engine(wlName, engName)
		if err != nil {
			return nil, err
		}
		feat := env.Featurizer(wlName, feature.Histogram)
		feat.Cardinality = source.src
		n := core.New(eng, feat, env.neoConfig(core.WorkloadCost))
		train, _ := env.Split(wlName)
		pg := env.PGExpert(wlName)
		if err := n.Bootstrap(train, func(q *query.Query) (*plan.Plan, error) {
			p, _, err := pg.Optimize(q)
			return p, err
		}); err != nil {
			return nil, err
		}
		// Evaluate output shift per join bucket and error level.
		for _, bucket := range []string{"<=3", ">3"} {
			base := outputsForBucket(n, bucket, 0, env.Config.Seed)
			for _, orders := range []float64{0, 2, 5} {
				shifted := outputsForBucket(n, bucket, orders, env.Config.Seed+int64(orders))
				rep.AddRow(source.name, bucket, fmt.Sprintf("%.0f", orders), stddevDiff(base, shifted))
			}
		}
	}
	rep.AddNote("paper shape: with PostgreSQL estimates the output barely moves for >3-join plans (Neo learned to distrust them) but varies for <=3-join plans; with true cardinalities the output varies in both buckets")
	return rep, nil
}

// outputsForBucket computes value-network outputs over the experienced plans
// whose join count falls in the bucket, with the cardinality feature
// perturbed by the given number of orders of magnitude.
func outputsForBucket(n *core.Neo, bucket string, orders float64, seed int64) []float64 {
	if orders > 0 {
		n.Featurizer.Error = stats.NewErrorModel(orders, seed)
	} else {
		n.Featurizer.Error = nil
	}
	defer func() { n.Featurizer.Error = nil }()
	var out []float64
	for _, entry := range n.Experience.Entries() {
		joins := entry.Query.NumJoins()
		if (bucket == "<=3" && joins > 3) || (bucket == ">3" && joins <= 3) {
			continue
		}
		out = append(out, n.PredictNormalized(entry.Query, entry.Plan))
	}
	return out
}

func stddevDiff(base, shifted []float64) float64 {
	nMin := len(base)
	if len(shifted) < nMin {
		nMin = len(shifted)
	}
	if nMin == 0 {
		return 0
	}
	diffs := make([]float64, nMin)
	var mean float64
	for i := 0; i < nMin; i++ {
		diffs[i] = shifted[i] - base[i]
		mean += diffs[i]
	}
	mean /= float64(nMin)
	var variance float64
	for _, d := range diffs {
		variance += (d - mean) * (d - mean)
	}
	return math.Sqrt(variance / float64(nMin))
}

// Figure15 reproduces Figure 15: per-query latency difference between Neo's
// plans and the PostgreSQL expert's plans on the same engine, under the two
// cost functions (workload cost vs. relative cost).
func Figure15(env *Env) (*Report, error) {
	rep := &Report{
		Name:   "figure15",
		Title:  "Per-query difference vs. PostgreSQL plans under the two cost functions",
		Header: []string{"cost function", "queries improved", "queries regressed", "worst regression(ms)", "total saved(ms)"},
	}
	wlName := "job"
	engName := env.Config.engines()[0]
	for _, costFn := range []core.CostFunction{core.WorkloadCost, core.RelativeCost} {
		run, err := env.TrainNeo(wlName, engName, feature.RVector, costFn, false)
		if err != nil {
			return nil, err
		}
		queries := append(append([]*query.Query{}, run.Train...), run.Test...)
		improved, regressed := 0, 0
		worst, saved := 0.0, 0.0
		for _, q := range queries {
			p, _, err := run.Neo.Optimize(q)
			if err != nil {
				return nil, err
			}
			neoLat, _, err := run.Engine.Simulate(p)
			if err != nil {
				return nil, err
			}
			pgPlan, _, err := run.PG.Optimize(q)
			if err != nil {
				return nil, err
			}
			pgLat, _, err := run.Engine.Simulate(pgPlan)
			if err != nil {
				return nil, err
			}
			diff := pgLat - neoLat // positive = Neo saves time
			saved += diff
			if diff >= 0 {
				improved++
			} else {
				regressed++
				if -diff > worst {
					worst = -diff
				}
			}
		}
		rep.AddRow(costFn.String(), improved, regressed, fmt.Sprintf("%.1f", worst), fmt.Sprintf("%.1f", saved))
	}
	rep.AddNote("paper shape: the workload cost function saves the most total time but regresses a few queries; the relative cost function nearly eliminates regressions at the price of smaller total savings")
	return rep, nil
}

// Figure16 reproduces Figure 16: plan quality as a function of the search
// budget, grouped by the number of joins in the query.
func Figure16(env *Env) (*Report, error) {
	rep := &Report{
		Name:   "figure16",
		Title:  "Search budget vs. plan quality, grouped by number of joins",
		Header: []string{"joins", "budget(expansions)", "latency/best"},
	}
	wlName := "job"
	engName := env.Config.engines()[0]
	run, err := env.TrainNeo(wlName, engName, feature.RVector, core.WorkloadCost, false)
	if err != nil {
		return nil, err
	}
	budgets := []int{8, 16, 32, 64, 128, 256}
	queries := append(append([]*query.Query{}, run.Train...), run.Test...)
	byJoins := map[int][]*query.Query{}
	for _, q := range queries {
		byJoins[q.NumJoins()] = append(byJoins[q.NumJoins()], q)
	}
	var joinCounts []int
	for j := range byJoins {
		joinCounts = append(joinCounts, j)
	}
	sort.Ints(joinCounts)
	for _, j := range joinCounts {
		group := byJoins[j]
		if len(group) > 3 {
			group = group[:3]
		}
		// Latency per budget, then normalise by the best across budgets.
		latencies := make([]float64, len(budgets))
		for bi, budget := range budgets {
			total := 0.0
			for _, q := range group {
				res, err := search.BestFirst(q, run.Neo.Scorer(q), search.Options{
					Catalog:       run.Neo.Featurizer.Catalog,
					MaxExpansions: budget,
				})
				if err != nil {
					return nil, err
				}
				lat, _, err := run.Engine.Simulate(res.Plan)
				if err != nil {
					return nil, err
				}
				total += lat
			}
			latencies[bi] = total
		}
		best := latencies[0]
		for _, l := range latencies {
			if l < best {
				best = l
			}
		}
		for bi, budget := range budgets {
			rep.AddRow(j, budget, latencies[bi]/maxFloat(best, 1e-9))
		}
	}
	rep.AddNote("paper shape: queries with few joins reach best quality at tiny budgets; queries with many joins need larger budgets, and budgets beyond ~250 expansions stop helping")
	return rep, nil
}

// Figure17 reproduces Figure 17: row-vector training time for the "joins"
// (partially denormalised) and "no joins" variants on each dataset.
func Figure17(env *Env) (*Report, error) {
	rep := &Report{
		Name:   "figure17",
		Title:  "Row-vector training time per dataset and variant",
		Header: []string{"dataset", "variant", "sentences", "train time (s)", "db size (MB)"},
	}
	for _, wlName := range env.Config.workloads() {
		db := env.DBs[wlName]
		sizeMB := float64(db.ApproxSizeBytes()) / (1024 * 1024)
		for _, joins := range []bool{true, false} {
			var sentences [][]string
			if joins {
				sentences = embedding.DenormalizedSentences(db, 40)
			} else {
				sentences = embedding.Sentences(db)
			}
			cfg := embedding.Config{Dim: env.Config.EmbeddingDim, Epochs: 3, NegativeSamples: 4, LearningRate: 0.05, MinCount: 1, Seed: env.Config.Seed}
			start := time.Now()
			m := embedding.Train(sentences, cfg)
			elapsed := time.Since(start).Seconds()
			variant := "no joins"
			if joins {
				variant = "joins"
			}
			rep.AddRow(wlName, variant, m.Sentences, fmt.Sprintf("%.2f", elapsed), fmt.Sprintf("%.2f", sizeMB))
		}
	}
	rep.AddNote("paper shape: the 'joins' variant is several times slower to train than 'no joins', and training time grows with dataset size")
	return rep, nil
}

// AblationNoDemonstration reproduces the Section 6.3.3 discussion: learning
// without expert demonstration (bootstrapping from random plans with a
// latency clip) converges far more slowly than learning from demonstration.
func AblationNoDemonstration(env *Env) (*Report, error) {
	rep := &Report{
		Name:   "nodemo",
		Title:  "Is demonstration necessary? Expert bootstrap vs. random bootstrap",
		Header: []string{"bootstrap", "episode", "neo/native"},
	}
	wlName := "job"
	engName := env.Config.engines()[0]

	// Expert bootstrap (the normal protocol).
	expertRun, err := env.TrainNeo(wlName, engName, feature.Histogram, core.WorkloadCost, true)
	if err != nil {
		return nil, err
	}
	for i, v := range expertRun.Curve {
		rep.AddRow("expert-demonstration", i+1, v)
	}

	// Random bootstrap: same protocol, but the initial experience comes from
	// random plans (clipped at a timeout, as discussed in the paper).
	eng, err := env.Engine(wlName, engName)
	if err != nil {
		return nil, err
	}
	feat := env.Featurizer(wlName, feature.Histogram)
	n := core.New(eng, feat, env.neoConfig(core.WorkloadCost))
	train, test := env.Split(wlName)
	rp := expert.NewRandomPlanner(env.DBs[wlName].Catalog, env.Config.Seed)
	const timeoutMS = 5000.0
	for _, q := range train {
		p := rp.Plan(q)
		lat, _, err := eng.Execute(p)
		if err != nil {
			return nil, err
		}
		if lat > timeoutMS {
			lat = timeoutMS // timeout clipping destroys part of the signal
		}
		n.Experience.Add(q, p, lat)
		n.SetBaseline(q.ID, lat)
	}
	n.Retrain()
	// Baseline for normalisation: the native optimizer on the test set.
	var nativeTotal float64
	for _, q := range test {
		p, _, err := expertRun.Native.Optimize(q)
		if err != nil {
			return nil, err
		}
		lat, _, err := eng.Execute(p)
		if err != nil {
			return nil, err
		}
		nativeTotal += lat
	}
	for ep := 1; ep <= env.Config.Episodes; ep++ {
		if _, err := n.RunEpisode(ep, train); err != nil {
			return nil, err
		}
		total, _, err := n.Evaluate(test)
		if err != nil {
			return nil, err
		}
		rep.AddRow("random-bootstrap", ep, total/maxFloat(nativeTotal, 1e-9))
	}
	rep.AddNote("paper shape: without demonstration the optimizer remains far from the native baseline within the same number of episodes")
	return rep, nil
}

// AblationSearchVsGreedy compares the full best-first search against the
// greedy ("hurry-up" / Q-learning-style) plan construction using the same
// trained value network (Section 4.2 discussion).
func AblationSearchVsGreedy(env *Env) (*Report, error) {
	rep := &Report{
		Name:   "searchvsgreedy",
		Title:  "Best-first search vs. greedy plan construction with the same value network",
		Header: []string{"strategy", "total latency (ms)", "relative to search"},
	}
	run, err := env.TrainNeo("job", env.Config.engines()[0], feature.RVector, core.WorkloadCost, false)
	if err != nil {
		return nil, err
	}
	queries := append(append([]*query.Query{}, run.Train...), run.Test...)
	var searchTotal, greedyTotal float64
	for _, q := range queries {
		sp, _, err := run.Neo.Optimize(q)
		if err != nil {
			return nil, err
		}
		sLat, _, err := run.Engine.Simulate(sp)
		if err != nil {
			return nil, err
		}
		searchTotal += sLat
		gp, _, err := run.Neo.OptimizeGreedy(q)
		if err != nil {
			return nil, err
		}
		gLat, _, err := run.Engine.Simulate(gp)
		if err != nil {
			return nil, err
		}
		greedyTotal += gLat
	}
	rep.AddRow("best-first search", fmt.Sprintf("%.1f", searchTotal), 1.0)
	rep.AddRow("greedy (hurry-up)", fmt.Sprintf("%.1f", greedyTotal), greedyTotal/maxFloat(searchTotal, 1e-9))
	rep.AddNote("paper shape: combining value estimation with search is less sensitive to model error than greedy action selection")
	return rep, nil
}

// AblationTreeConvVsFlat compares plan search guided by the tree-structured
// encoding against search guided by a flattened encoding (all node vectors
// summed into a single node, destroying the structure that tree convolution
// exploits), using the same trained value network. It isolates the
// contribution of the structural inductive bias called out in DESIGN.md.
func AblationTreeConvVsFlat(env *Env) (*Report, error) {
	rep := &Report{
		Name:   "treeconvvsflat",
		Title:  "Tree-structured vs. flattened plan encoding (same trained network)",
		Header: []string{"encoding", "total latency (ms)", "relative to tree"},
	}
	wlName := "job"
	engName := env.Config.engines()[0]
	run, err := env.TrainNeo(wlName, engName, feature.Histogram, core.WorkloadCost, false)
	if err != nil {
		return nil, err
	}
	queries := append(append([]*query.Query{}, run.Train...), run.Test...)

	evaluate := func(scorerFor func(q *query.Query) search.BatchScorer) (float64, error) {
		total := 0.0
		for _, q := range queries {
			res, err := search.BestFirst(q, scorerFor(q), search.Options{
				Catalog:       run.Neo.Featurizer.Catalog,
				MaxExpansions: env.Config.SearchExpansions,
			})
			if err != nil {
				return 0, err
			}
			lat, _, err := run.Engine.Simulate(res.Plan)
			if err != nil {
				return 0, err
			}
			total += lat
		}
		return total, nil
	}

	treeTotal, err := evaluate(func(q *query.Query) search.BatchScorer { return run.Neo.Scorer(q) })
	if err != nil {
		return nil, err
	}
	flatTotal, err := evaluate(func(q *query.Query) search.BatchScorer { return flatScorer(run.Neo, q) })
	if err != nil {
		return nil, err
	}
	rep.AddRow("tree convolution", fmt.Sprintf("%.1f", treeTotal), 1.0)
	rep.AddRow("flattened", fmt.Sprintf("%.1f", flatTotal), flatTotal/maxFloat(treeTotal, 1e-9))
	rep.AddNote("design-choice ablation (DESIGN.md): destroying plan structure should not beat the tree-convolution encoding")
	return rep, nil
}

// flatScorer scores plans after collapsing the encoded forest into a single
// summed node.
func flatScorer(n *core.Neo, q *query.Query) search.BatchScorer {
	return search.ScorerFunc(func(p *plan.Plan) float64 {
		trees := n.EncodePlanTrees(p)
		if len(trees) == 0 {
			return 0
		}
		dim := len(trees[0].Data)
		sum := make([]float64, dim)
		for _, t := range trees {
			t.Walk(func(node *treeconv.Tree) {
				for i := 0; i < dim && i < len(node.Data); i++ {
					sum[i] += node.Data[i]
				}
			})
		}
		flat := []*treeconv.Tree{treeconv.NewLeaf(sum)}
		return n.Net.Predict(n.Featurizer.EncodeQuery(q), flat)
	})
}
