package treeconv

import (
	"math"
	"math/rand"
	"testing"

	"neo/internal/nn"
)

func smallTree() *Tree {
	// A three-node tree matching the paper's Figure 6 "merge join over merge
	// join" example shape.
	return NewNode([]float64{1, 0, 1, 1, 0},
		NewLeaf([]float64{0, 0, 1, 0, 0}),
		NewLeaf([]float64{0, 0, 0, 1, 0}))
}

func TestTreeBasics(t *testing.T) {
	tr := smallTree()
	if tr.NumNodes() != 3 {
		t.Errorf("NumNodes = %d, want 3", tr.NumNodes())
	}
	var visited int
	tr.Walk(func(*Tree) { visited++ })
	if visited != 3 {
		t.Errorf("Walk visited %d, want 3", visited)
	}
	doubled := tr.Map(func(n *Tree) []float64 {
		out := make([]float64, len(n.Data))
		for i, v := range n.Data {
			out[i] = 2 * v
		}
		return out
	})
	if doubled.Data[0] != 2 || doubled.Left.Data[2] != 2 {
		t.Errorf("Map did not double values")
	}
	var nilTree *Tree
	if nilTree.NumNodes() != 0 {
		t.Errorf("nil tree NumNodes should be 0")
	}
}

// TestPaperFigure6Detector reproduces Example 1 of Figure 6: a filter with
// weights {1,-1,0,0,0} in e_p, e_l, e_r outputs 2 at the root of a plan with
// two merge joins in a row, and 0 at the root of a plan with a hash join on
// top of a merge join.
func TestPaperFigure6Detector(t *testing.T) {
	layer := &Layer{
		InChannels:  5,
		OutChannels: 1,
		EP:          &nn.Param{Value: []float64{1, -1, 0, 0, 0}, Grad: make([]float64, 5)},
		EL:          &nn.Param{Value: []float64{1, -1, 0, 0, 0}, Grad: make([]float64, 5)},
		ER:          &nn.Param{Value: []float64{1, -1, 0, 0, 0}, Grad: make([]float64, 5)},
		Bias:        &nn.Param{Value: []float64{0}, Grad: make([]float64, 1)},
		Act:         nn.NewLeakyReLU(),
	}
	// Plan 1: merge join (1,0,...) on top of merge join (1,0,...) and C.
	mergeOverMerge := NewNode([]float64{1, 0, 1, 1, 1},
		NewNode([]float64{1, 0, 1, 1, 0},
			NewLeaf([]float64{0, 0, 1, 0, 0}),
			NewLeaf([]float64{0, 0, 0, 1, 0})),
		NewLeaf([]float64{0, 0, 0, 0, 1}))
	// Plan 2: hash join (0,1,...) on top of the same merge join.
	hashOverMerge := NewNode([]float64{0, 1, 1, 1, 1},
		NewNode([]float64{1, 0, 1, 1, 0},
			NewLeaf([]float64{0, 0, 1, 0, 0}),
			NewLeaf([]float64{0, 0, 0, 1, 0})),
		NewLeaf([]float64{0, 0, 0, 0, 1}))

	out1 := layer.Forward(mergeOverMerge).Output()
	out2 := layer.Forward(hashOverMerge).Output()
	if math.Abs(out1.Data[0]-2) > 1e-9 {
		t.Errorf("merge-over-merge root output = %f, want 2", out1.Data[0])
	}
	// The paper's figure shows 0; with a leaky ReLU the negative pre-activation
	// (-2) becomes a small negative number, so assert it is far below 2.
	if out2.Data[0] > 0.01 {
		t.Errorf("hash-over-merge root output = %f, want <= 0", out2.Data[0])
	}
}

func TestLayerPreservesStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	layer := NewLayer(5, 7, rng)
	out := layer.Forward(smallTree()).Output()
	if out.NumNodes() != 3 {
		t.Errorf("output tree has %d nodes, want 3", out.NumNodes())
	}
	out.Walk(func(n *Tree) {
		if len(n.Data) != 7 {
			t.Errorf("output node has %d channels, want 7", len(n.Data))
		}
	})
	// Empty tree handling.
	empty := layer.Forward(nil)
	if empty.Output() != nil {
		t.Errorf("forward of nil tree should be nil")
	}
}

func TestLayerGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	layer := NewLayer(3, 4, rng)
	input := NewNode([]float64{0.5, -0.2, 0.8},
		NewLeaf([]float64{0.1, 0.9, -0.4}),
		NewLeaf([]float64{-0.7, 0.3, 0.2}))

	// Scalar loss: sum of all output channels over all nodes.
	loss := func() float64 {
		out := layer.Forward(input).Output()
		s := 0.0
		out.Walk(func(n *Tree) {
			for _, v := range n.Data {
				s += v
			}
		})
		return s
	}
	tape := layer.Forward(input)
	gradTree := tape.Output().Map(func(n *Tree) []float64 {
		g := make([]float64, len(n.Data))
		for i := range g {
			g[i] = 1
		}
		return g
	})
	gradIn := layer.Backward(tape, gradTree)

	const eps, tol = 1e-5, 1e-3
	for _, p := range layer.Params() {
		for i := range p.Value {
			orig := p.Value[i]
			p.Value[i] = orig + eps
			up := loss()
			p.Value[i] = orig - eps
			down := loss()
			p.Value[i] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-p.Grad[i]) > tol*(1+math.Abs(numeric)) {
				t.Errorf("%s[%d]: numeric %f vs analytic %f", p.Name, i, numeric, p.Grad[i])
			}
		}
	}
	// Input gradient check on the root vector.
	for i := range input.Data {
		orig := input.Data[i]
		input.Data[i] = orig + eps
		up := loss()
		input.Data[i] = orig - eps
		down := loss()
		input.Data[i] = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-gradIn.Data[i]) > tol {
			t.Errorf("input grad[%d]: numeric %f vs analytic %f", i, numeric, gradIn.Data[i])
		}
	}
}

func TestStackForwardBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	stack := NewStack([]int{5, 8, 4}, rng)
	if len(stack.Layers) != 2 {
		t.Fatalf("expected 2 layers")
	}
	tape := stack.Forward(smallTree())
	out := tape.Output()
	if out.NumNodes() != 3 {
		t.Errorf("stack output should preserve structure")
	}
	if len(out.Data) != 4 {
		t.Errorf("stack output channels = %d, want 4", len(out.Data))
	}
	gradTree := out.Map(func(n *Tree) []float64 {
		g := make([]float64, len(n.Data))
		for i := range g {
			g[i] = 1
		}
		return g
	})
	gradIn := stack.Backward(tape, gradTree)
	if gradIn == nil || len(gradIn.Data) != 5 {
		t.Errorf("stack input gradient has wrong shape")
	}
	if len(stack.Params()) != 8 {
		t.Errorf("stack should expose 8 parameter tensors, got %d", len(stack.Params()))
	}
}

func TestNewStackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	NewStack([]int{3}, rand.New(rand.NewSource(1)))
}

func TestDynamicPool(t *testing.T) {
	tr := NewNode([]float64{1, -5},
		NewLeaf([]float64{0, 7}),
		NewLeaf([]float64{-3, 2}))
	pooled, argmax := DynamicPool(tr)
	if pooled[0] != 1 || pooled[1] != 7 {
		t.Errorf("pooled = %v, want [1 7]", pooled)
	}
	if argmax[0] != tr || argmax[1] != tr.Left {
		t.Errorf("argmax nodes wrong")
	}
	// Backward routes gradient only to the argmax nodes.
	gradTree := PoolBackward(tr, argmax, []float64{0.5, 2.0})
	if gradTree.Data[0] != 0.5 || gradTree.Data[1] != 0 {
		t.Errorf("root gradient = %v", gradTree.Data)
	}
	if gradTree.Left.Data[1] != 2.0 || gradTree.Left.Data[0] != 0 {
		t.Errorf("left gradient = %v", gradTree.Left.Data)
	}
	if gradTree.Right.Data[0] != 0 || gradTree.Right.Data[1] != 0 {
		t.Errorf("right gradient = %v", gradTree.Right.Data)
	}
	// Nil handling.
	if p, a := DynamicPool(nil); p != nil || a != nil {
		t.Errorf("DynamicPool(nil) should be nil")
	}
	if PoolBackward(nil, nil, nil) != nil {
		t.Errorf("PoolBackward(nil) should be nil")
	}
}

func TestPoolingInvariantToStructureSize(t *testing.T) {
	// Pooling output dimension equals channel count regardless of tree size.
	rng := rand.New(rand.NewSource(4))
	layer := NewLayer(5, 6, rng)
	small := layer.Forward(smallTree()).Output()
	big := layer.Forward(NewNode([]float64{1, 1, 0, 0, 1}, smallTree(), smallTree())).Output()
	p1, _ := DynamicPool(small)
	p2, _ := DynamicPool(big)
	if len(p1) != 6 || len(p2) != 6 {
		t.Errorf("pooled sizes = %d, %d; want 6, 6", len(p1), len(p2))
	}
}

func BenchmarkStackForward(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	stack := NewStack([]int{32, 64, 64, 32}, rng)
	// Build a 15-node balanced tree.
	var build func(depth int) *Tree
	build = func(depth int) *Tree {
		data := make([]float64, 32)
		for i := range data {
			data[i] = rng.Float64()
		}
		if depth == 0 {
			return NewLeaf(data)
		}
		return NewNode(data, build(depth-1), build(depth-1))
	}
	tr := build(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stack.Forward(tr)
	}
}
