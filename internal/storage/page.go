// Slotted heap pages: the on-disk unit of the disk-backed execution engine.
//
// A page is a fixed-size byte buffer with a 4-byte header, a slot directory
// growing down from the header and tuple data growing up from the end:
//
//	[ nslots u16 | freeEnd u16 | slot0 off,len | slot1 off,len | ... free ... | tupN | ... | tup1 | tup0 ]
//
// freeEnd is the offset of the lowest used tuple byte; the free region is
// [4+4*nslots, freeEnd). Tuples are encoded little-endian via internal/wire:
// int64 columns as 8 fixed bytes, string columns length-prefixed with a u16.
// All encoding is position-based against the table schema, so a tuple costs
// no per-field tags and decoding is a single forward pass.
package storage

import (
	"fmt"

	"neo/internal/schema"
	"neo/internal/wire"
)

// PageSize is the fixed size of one heap page in bytes.
const PageSize = 8192

// pageHeaderSize is the fixed page header: slot count and freeEnd offset.
const pageHeaderSize = 4

// slotEntrySize is one slot-directory entry: tuple offset and length.
const slotEntrySize = 4

// RID identifies a tuple by page number and slot within its heap file.
type RID struct {
	Page int32
	Slot int32
}

// Page is one slotted heap page. The zero value is not valid; use NewPage
// for an empty page or wrap raw file bytes with PageFromBytes.
type Page struct {
	buf []byte
}

// NewPage returns an empty page.
func NewPage() *Page {
	p := &Page{buf: make([]byte, PageSize)}
	wire.PutU16(p.buf[2:], PageSize) // freeEnd: all of the data region is free
	return p
}

// PageFromBytes wraps one page worth of file bytes (no copy). The buffer
// must be exactly PageSize long.
func PageFromBytes(b []byte) (*Page, error) {
	if len(b) != PageSize {
		return nil, fmt.Errorf("storage: page buffer is %d bytes, want %d", len(b), PageSize)
	}
	p := &Page{buf: b}
	if int(p.freeEnd()) > PageSize || int(pageHeaderSize+slotEntrySize*p.NumSlots()) > int(p.freeEnd()) {
		return nil, fmt.Errorf("storage: corrupt page header (nslots=%d freeEnd=%d)", p.NumSlots(), p.freeEnd())
	}
	return p, nil
}

// Bytes returns the page's backing buffer (for writing to disk).
func (p *Page) Bytes() []byte { return p.buf }

// NumSlots returns the number of tuples stored in the page.
func (p *Page) NumSlots() int { return int(wire.U16(p.buf)) }

func (p *Page) freeEnd() uint16 { return wire.U16(p.buf[2:]) }

// FreeBytes returns how many payload bytes (tuple + slot entry) still fit.
func (p *Page) FreeBytes() int {
	free := int(p.freeEnd()) - (pageHeaderSize + slotEntrySize*p.NumSlots())
	if free < slotEntrySize {
		return 0
	}
	return free - slotEntrySize
}

// Insert appends one encoded tuple and returns its slot number; ok is false
// when the page lacks space.
func (p *Page) Insert(tuple []byte) (slot int, ok bool) {
	if len(tuple) > p.FreeBytes() {
		return 0, false
	}
	n := p.NumSlots()
	off := int(p.freeEnd()) - len(tuple)
	copy(p.buf[off:], tuple)
	entry := p.buf[pageHeaderSize+slotEntrySize*n:]
	wire.PutU16(entry, uint16(off))
	wire.PutU16(entry[2:], uint16(len(tuple)))
	wire.PutU16(p.buf, uint16(n+1))
	wire.PutU16(p.buf[2:], uint16(off))
	return n, true
}

// Tuple returns the encoded bytes of the tuple in the given slot (a view
// into the page, valid as long as the page is).
func (p *Page) Tuple(slot int) ([]byte, error) {
	if slot < 0 || slot >= p.NumSlots() {
		return nil, fmt.Errorf("storage: slot %d out of range [0,%d)", slot, p.NumSlots())
	}
	entry := p.buf[pageHeaderSize+slotEntrySize*slot:]
	off, ln := int(wire.U16(entry)), int(wire.U16(entry[2:]))
	if off+ln > PageSize {
		return nil, fmt.Errorf("storage: corrupt slot %d (off=%d len=%d)", slot, off, ln)
	}
	return p.buf[off : off+ln], nil
}

// EncodeTuple appends the encoded form of one row (values in schema column
// order) to buf and returns the extended slice.
func EncodeTuple(buf []byte, ts *schema.Table, vals []Value) ([]byte, error) {
	if len(vals) != len(ts.Columns) {
		return nil, fmt.Errorf("storage: table %q expects %d values, got %d", ts.Name, len(ts.Columns), len(vals))
	}
	for i, col := range ts.Columns {
		v := vals[i]
		if v.Kind != col.Type {
			return nil, fmt.Errorf("storage: table %q column %q: cannot encode %v value into %v column",
				ts.Name, col.Name, v.Kind, col.Type)
		}
		switch col.Type {
		case schema.IntType:
			var b [8]byte
			wire.PutI64(b[:], v.Int)
			buf = append(buf, b[:]...)
		default: // StringType
			if len(v.Str) > int(^uint16(0)) {
				return nil, fmt.Errorf("storage: table %q column %q: string of %d bytes exceeds tuple limit",
					ts.Name, col.Name, len(v.Str))
			}
			var b [2]byte
			wire.PutU16(b[:], uint16(len(v.Str)))
			buf = append(buf, b[:]...)
			buf = append(buf, v.Str...)
		}
	}
	return buf, nil
}

// DecodeTuple decodes one encoded tuple into dst (reused when cap allows)
// following the table schema. Returned values alias nothing in data except
// through Go string copies, so they stay valid after the page is evicted.
func DecodeTuple(data []byte, ts *schema.Table, dst []Value) ([]Value, error) {
	dst = dst[:0]
	off := 0
	for _, col := range ts.Columns {
		switch col.Type {
		case schema.IntType:
			if off+8 > len(data) {
				return nil, fmt.Errorf("storage: table %q: truncated int column %q", ts.Name, col.Name)
			}
			dst = append(dst, Value{Kind: schema.IntType, Int: wire.I64(data[off:])})
			off += 8
		default: // StringType
			if off+2 > len(data) {
				return nil, fmt.Errorf("storage: table %q: truncated string length for column %q", ts.Name, col.Name)
			}
			n := int(wire.U16(data[off:]))
			off += 2
			if off+n > len(data) {
				return nil, fmt.Errorf("storage: table %q: truncated string column %q", ts.Name, col.Name)
			}
			dst = append(dst, Value{Kind: schema.StringType, Str: string(data[off : off+n])})
			off += n
		}
	}
	if off != len(data) {
		return nil, fmt.Errorf("storage: table %q: %d trailing tuple bytes", ts.Name, len(data)-off)
	}
	return dst, nil
}
