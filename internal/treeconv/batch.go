// Batched tree convolution. The pointer-chasing per-tree Forward in
// treeconv.go remains the training path; the inference hot path flattens a
// whole batch of forests — every node of every tree of every sample — into
// contiguous arrays once, then convolves all nodes of the batch inside flat
// loops with no per-node allocations. Structure is expressed as child
// indices, with -1 standing in for the zero-padded children the paper
// attaches to leaves.
//
// The batched convolution performs the same floating-point operations in the
// same order per node as Layer.convolve, so batched and per-tree inference
// produce bit-identical results.
package treeconv

import (
	"math"

	"neo/internal/nn"
)

// Batch is a forest batch flattened into index form: node i carries the
// Channels-vector Data[i*Channels:(i+1)*Channels], its children are the nodes
// Left[i] and Right[i] (-1 when absent, convolved as all-zero vectors), and
// it belongs to forest Sample[i] of the batch.
type Batch struct {
	Channels int
	N        int // number of nodes
	Samples  int // number of forests
	Data     []float64
	Left     []int
	Right    []int
	Sample   []int
}

// Row returns node i's feature vector.
func (b *Batch) Row(i int) []float64 {
	return b.Data[i*b.Channels : (i+1)*b.Channels]
}

// BatchBuilder flattens forests into a Batch, reusing its buffers across
// calls so a warmed-up builder performs no allocations.
type BatchBuilder struct {
	batch Batch
	next  int
}

// Build flattens one forest per sample into a batch of channels-wide node
// rows. Each node's row is produced by fill(sample, node, row), which must
// overwrite every element (rows are recycled, not zeroed); this is where the
// value network splices its spatial replication into the flattening pass.
func (bb *BatchBuilder) Build(forests [][]*Tree, channels int, fill func(sample int, node *Tree, row []float64)) *Batch {
	n := 0
	for _, f := range forests {
		for _, t := range f {
			n += t.NumNodes()
		}
	}
	b := &bb.batch
	b.Channels = channels
	b.N = n
	b.Samples = len(forests)
	b.Data = growFloats(b.Data, n*channels)
	b.Left = growInts(b.Left, n)
	b.Right = growInts(b.Right, n)
	b.Sample = growInts(b.Sample, n)
	bb.next = 0
	for si, f := range forests {
		for _, t := range f {
			if t != nil {
				bb.addTree(t, si, fill)
			}
		}
	}
	return b
}

// addTree appends t's nodes in pre-order and returns t's node index.
func (bb *BatchBuilder) addTree(t *Tree, sample int, fill func(sample int, node *Tree, row []float64)) int {
	b := &bb.batch
	i := bb.next
	bb.next++
	fill(sample, t, b.Row(i))
	b.Sample[i] = sample
	if t.Left != nil {
		b.Left[i] = bb.addTree(t.Left, sample, fill)
	} else {
		b.Left[i] = -1
	}
	if t.Right != nil {
		b.Right[i] = bb.addTree(t.Right, sample, fill)
	} else {
		b.Right[i] = -1
	}
	return i
}

// BatchScratch holds every piece of reusable storage a batched stack forward
// needs: the arena for activation matrices, the shared all-zero row standing
// in for absent children, and two batch headers the layers ping-pong between.
// Not safe for concurrent use; keep one per goroutine.
type BatchScratch struct {
	Arena nn.Arena
	zeros []float64
	ping  Batch
	pong  Batch
}

// Reset recycles the scratch for the next forward pass.
func (s *BatchScratch) Reset() { s.Arena.Reset() }

// zeroRow returns an all-zero row of at least dim elements.
func (s *BatchScratch) zeroRow(dim int) []float64 {
	if len(s.zeros) < dim {
		s.zeros = make([]float64, dim) // make zeroes it; never written afterwards
	}
	return s.zeros[:dim]
}

// forwardBatchInto convolves the filterbank over every node of in, writing
// the activated output into out (whose Data is drawn from the arena). The
// structural index slices are shared with in.
func (l *Layer) forwardBatchInto(in, out *Batch, a *nn.Arena, zeros []float64) {
	out.Channels = l.OutChannels
	out.N = in.N
	out.Samples = in.Samples
	out.Left = in.Left
	out.Right = in.Right
	out.Sample = in.Sample
	out.Data = a.Alloc(in.N * l.OutChannels)
	for n := 0; n < in.N; n++ {
		x := in.Row(n)
		y := out.Data[n*l.OutChannels : (n+1)*l.OutChannels]
		li, ri := in.Left[n], in.Right[n]
		// Plan trees are strictly binary, so almost every node is either a
		// leaf (no children) or a join (both children); each gets a
		// specialised kernel that skips the dot products against the
		// zero-padding of absent children — dropping a w·0 term leaves the
		// accumulator bit-identical (up to the sign of zero, which compares
		// equal). One-child nodes fall back to the padded generic kernel.
		switch {
		case li < 0 && ri < 0:
			l.convLeaf(x, y)
		case li >= 0 && ri >= 0:
			l.convBoth(x, in.Row(li), in.Row(ri), y)
		default:
			leftData, rightData := zeros[:l.InChannels], zeros[:l.InChannels]
			if li >= 0 {
				leftData = in.Row(li)
			}
			if ri >= 0 {
				rightData = in.Row(ri)
			}
			l.convPadded(x, leftData, rightData, y)
		}
	}
}

// convBoth convolves one node with both children present. Four output
// channels per pass: four independent accumulator chains hide the
// floating-point add latency that serialises the per-channel dot products,
// and every input load is shared by the four filters. Within a channel the
// operation order matches Layer.convolve exactly, so results stay
// bit-identical.
func (l *Layer) convBoth(x, xl, xr, y []float64) {
	ic := l.InChannels
	alpha := l.Act.Alpha
	o := 0
	for ; o+4 <= l.OutChannels; o += 4 {
		ep0 := l.EP.Value[o*ic : o*ic+ic]
		ep1 := l.EP.Value[(o+1)*ic : (o+1)*ic+ic]
		ep2 := l.EP.Value[(o+2)*ic : (o+2)*ic+ic]
		ep3 := l.EP.Value[(o+3)*ic : (o+3)*ic+ic]
		el0 := l.EL.Value[o*ic : o*ic+ic]
		el1 := l.EL.Value[(o+1)*ic : (o+1)*ic+ic]
		el2 := l.EL.Value[(o+2)*ic : (o+2)*ic+ic]
		el3 := l.EL.Value[(o+3)*ic : (o+3)*ic+ic]
		er0 := l.ER.Value[o*ic : o*ic+ic]
		er1 := l.ER.Value[(o+1)*ic : (o+1)*ic+ic]
		er2 := l.ER.Value[(o+2)*ic : (o+2)*ic+ic]
		er3 := l.ER.Value[(o+3)*ic : (o+3)*ic+ic]
		s0 := l.Bias.Value[o]
		s1 := l.Bias.Value[o+1]
		s2 := l.Bias.Value[o+2]
		s3 := l.Bias.Value[o+3]
		for i := 0; i < ic; i++ {
			xv, lv, rv := x[i], xl[i], xr[i]
			s0 += ep0[i] * xv
			s0 += el0[i] * lv
			s0 += er0[i] * rv
			s1 += ep1[i] * xv
			s1 += el1[i] * lv
			s1 += er1[i] * rv
			s2 += ep2[i] * xv
			s2 += el2[i] * lv
			s2 += er2[i] * rv
			s3 += ep3[i] * xv
			s3 += el3[i] * lv
			s3 += er3[i] * rv
		}
		y[o] = leak(s0, alpha)
		y[o+1] = leak(s1, alpha)
		y[o+2] = leak(s2, alpha)
		y[o+3] = leak(s3, alpha)
	}
	for ; o < l.OutChannels; o++ {
		sum := l.Bias.Value[o]
		ep := l.EP.Value[o*ic : o*ic+ic]
		el := l.EL.Value[o*ic : o*ic+ic]
		er := l.ER.Value[o*ic : o*ic+ic]
		for i := 0; i < ic; i++ {
			sum += ep[i] * x[i]
			sum += el[i] * xl[i]
			sum += er[i] * xr[i]
		}
		y[o] = leak(sum, alpha)
	}
}

// convLeaf convolves a childless node: only the parent filterbank
// contributes, so the child dot products (against zero vectors) are skipped
// entirely.
func (l *Layer) convLeaf(x, y []float64) {
	ic := l.InChannels
	alpha := l.Act.Alpha
	o := 0
	for ; o+4 <= l.OutChannels; o += 4 {
		ep0 := l.EP.Value[o*ic : o*ic+ic]
		ep1 := l.EP.Value[(o+1)*ic : (o+1)*ic+ic]
		ep2 := l.EP.Value[(o+2)*ic : (o+2)*ic+ic]
		ep3 := l.EP.Value[(o+3)*ic : (o+3)*ic+ic]
		s0 := l.Bias.Value[o]
		s1 := l.Bias.Value[o+1]
		s2 := l.Bias.Value[o+2]
		s3 := l.Bias.Value[o+3]
		for i, xv := range x {
			s0 += ep0[i] * xv
			s1 += ep1[i] * xv
			s2 += ep2[i] * xv
			s3 += ep3[i] * xv
		}
		y[o] = leak(s0, alpha)
		y[o+1] = leak(s1, alpha)
		y[o+2] = leak(s2, alpha)
		y[o+3] = leak(s3, alpha)
	}
	for ; o < l.OutChannels; o++ {
		sum := l.Bias.Value[o]
		ep := l.EP.Value[o*ic : o*ic+ic]
		for i, xv := range x {
			sum += ep[i] * xv
		}
		y[o] = leak(sum, alpha)
	}
}

// convPadded is the generic kernel for one-child nodes, convolving against
// explicit zero padding exactly like Layer.convolve.
func (l *Layer) convPadded(x, xl, xr, y []float64) {
	ic := l.InChannels
	alpha := l.Act.Alpha
	for o := 0; o < l.OutChannels; o++ {
		sum := l.Bias.Value[o]
		ep := l.EP.Value[o*ic : o*ic+ic]
		el := l.EL.Value[o*ic : o*ic+ic]
		er := l.ER.Value[o*ic : o*ic+ic]
		for i := 0; i < ic; i++ {
			sum += ep[i] * x[i]
			sum += el[i] * xl[i]
			sum += er[i] * xr[i]
		}
		y[o] = leak(sum, alpha)
	}
}

func leak(v, alpha float64) float64 {
	if v < 0 {
		return alpha * v
	}
	return v
}

// ForwardBatch runs every layer of the stack over the flattened batch
// (inference only; no tape is recorded). The returned batch aliases scratch
// storage and is valid until the next Reset.
func (s *Stack) ForwardBatch(in *Batch, scratch *BatchScratch) *Batch {
	maxIn := 0
	for _, l := range s.Layers {
		if l.InChannels > maxIn {
			maxIn = l.InChannels
		}
	}
	zeros := scratch.zeroRow(maxIn)
	cur, out := in, &scratch.ping
	for _, l := range s.Layers {
		l.forwardBatchInto(cur, out, &scratch.Arena, zeros)
		if out == &scratch.ping {
			cur, out = &scratch.ping, &scratch.pong
		} else {
			cur, out = &scratch.pong, &scratch.ping
		}
	}
	return cur
}

// PoolBatch dynamic-pools every sample of the batch: row s of the result is
// the elementwise maximum over all node vectors belonging to sample s,
// matching DynamicPool applied per tree followed by a cross-tree maximum.
// Samples with no nodes (empty forests) pool to all-zero rows. The result
// holds samples×b.Channels values drawn from the arena.
func PoolBatch(b *Batch, a *nn.Arena) []float64 {
	dim := b.Channels
	pooled := a.Alloc(b.Samples * dim)
	for i := range pooled {
		pooled[i] = math.Inf(-1)
	}
	for n := 0; n < b.N; n++ {
		row := pooled[b.Sample[n]*dim : (b.Sample[n]+1)*dim]
		for i, v := range b.Row(n) {
			if v > row[i] {
				row[i] = v
			}
		}
	}
	for i := range pooled {
		if math.IsInf(pooled[i], -1) {
			pooled[i] = 0
		}
	}
	return pooled
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}
